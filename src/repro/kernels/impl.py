"""Loop-form EAM and KMC rate kernels (numba-compatible, numpy-faithful).

Every function here is a scalar-loop twin of a vectorized NumPy
expression in :mod:`repro.md.forces` or :mod:`repro.kmc.events`, written
so its floating-point result is **bit-identical** to the NumPy path on
the same inputs.  That requires replicating NumPy's evaluation order,
not just its mathematics:

* ``np.bincount(idx, weights=w)`` accumulates per bin in input order —
  so do the scatter loops, with separate i/j accumulators combined by
  one elementwise add/subtract at the end, exactly like the
  ``bincount(i) - bincount(j)`` expressions they mirror.
* ``np.sum(a, axis=1)`` over a contiguous row uses NumPy's pairwise
  summation: sequential below 8 elements, one eight-accumulator unrolled
  block with the fixed combine tree ``((r0+r1)+(r2+r3))+((r4+r5)+(r6+r7))``
  up to 128.  :func:`pairwise_sum` replicates that block exactly; the
  dispatch layer guards row widths to ``<= 128`` so the recursive-split
  regime is never needed.
* Masked products keep NumPy's ``0.0 * x`` semantics (signed zeros)
  instead of skipping masked slots.
* ``exp`` stays **out** of the kernels: libm's ``exp`` and NumPy's SIMD
  ``exp`` differ in the last ulp, so the rate kernel returns migration
  energies and the caller applies ``nu * np.exp(-de/kt)`` with NumPy in
  both backends.

Tables are passed unpacked as ``(kind, coeff, samples, dx, nseg)``:
``kind == 0`` is the traditional ``(n+1, 7)`` coefficient layout of
:class:`~repro.potential.spline.SplineTable`; ``kind == 1`` is the
compacted sampled-value layout of
:class:`~repro.potential.compact.CompactTable` with on-the-fly
five-point reconstruction (paper §2.1.2).  The unused array is passed
empty so numba sees one stable signature.
"""

from __future__ import annotations

import numpy as np

from repro.kernels._jit import jit

#: Table-kind codes of the unpacked payloads.
KIND_SPLINE = 0
KIND_COMPACT = 1


@jit
def _locate(dx, nseg, x):
    """Segment index and clamped fractional position, as ``_locate`` does.

    Mirrors ``scaled.astype(int)`` (truncation toward zero) and the two
    ``np.clip`` calls, including their sign-of-zero behaviour: a
    negative-zero ``scaled - m`` survives the lower clip exactly as it
    does through ``np.clip(p, 0.0, 1.0)``.
    """
    scaled = x / dx
    m = int(scaled)
    if m < 0:
        m = 0
    elif m > nseg - 1:
        m = nseg - 1
    p = scaled - m
    if p < 0.0:
        p = 0.0
    elif p > 1.0:
        p = 1.0
    return m, p


@jit
def _compact_knot_d(s, nseg, m):
    """Five-point knot derivative with the boundary fallbacks of
    ``CompactTable._knot_derivative`` (conditions are disjoint for the
    ``nseg >= 4`` the constructor guarantees, so order is immaterial)."""
    if m == 0:
        return s[1] - s[0]
    if m == 1:
        return 0.5 * (s[2] - s[0])
    if m == nseg - 1:
        return 0.5 * (s[nseg] - s[nseg - 2])
    if m == nseg:
        return s[nseg] - s[nseg - 1]
    return (s[m - 2] - s[m + 2] + 8.0 * (s[m + 1] - s[m - 1])) / 12.0


@jit
def _table_vd(kind, coeff, samples, dx, nseg, x):
    """Scalar (value, derivative) of either table layout at ``x``."""
    m, p = _locate(dx, nseg, x)
    if kind == KIND_SPLINE:
        v = ((coeff[m, 3] * p + coeff[m, 4]) * p + coeff[m, 5]) * p + coeff[m, 6]
        dv = (coeff[m, 0] * p + coeff[m, 1]) * p + coeff[m, 2]
        return v, dv
    d0 = _compact_knot_d(samples, nseg, m)
    d1 = _compact_knot_d(samples, nseg, m + 1)
    df = samples[m + 1] - samples[m]
    c6 = samples[m]
    c5 = d0
    c4 = 3.0 * df - 2.0 * d0 - d1
    c3 = d0 + d1 - 2.0 * df
    v = ((c3 * p + c4) * p + c5) * p + c6
    dv = ((3.0 * c3 * p + 2.0 * c4) * p + c5) / dx
    return v, dv


@jit
def _table_v(kind, coeff, samples, dx, nseg, x):
    """Scalar value only (``table(x)``); same cubic as :func:`_table_vd`."""
    v, _dv = _table_vd(kind, coeff, samples, dx, nseg, x)
    return v


@jit
def table_vd(kind, coeff, samples, dx, nseg, x):
    """Vectorized (value, derivative) over a 1-D float64 array ``x``."""
    nx = x.shape[0]
    v = np.empty(nx)
    dv = np.empty(nx)
    for q in range(nx):
        a, b = _table_vd(kind, coeff, samples, dx, nseg, x[q])
        v[q] = a
        dv[q] = b
    return v, dv


@jit
def pairwise_sum(a, n):
    """``np.sum(a[:n])`` replicated bit-for-bit for ``n <= 128``.

    NumPy's pairwise reduction runs one unrolled eight-accumulator block
    below 129 elements; the combine tree and the sequential remainder
    tail below are copied from its loop structure.  Callers guard
    ``n <= 128`` (the dispatch layer refuses wider rows).
    """
    if n < 8:
        res = 0.0
        for k in range(n):
            res += a[k]
        return res
    r0 = a[0]
    r1 = a[1]
    r2 = a[2]
    r3 = a[3]
    r4 = a[4]
    r5 = a[5]
    r6 = a[6]
    r7 = a[7]
    i = 8
    lim = n - (n % 8)
    while i < lim:
        r0 += a[i]
        r1 += a[i + 1]
        r2 += a[i + 2]
        r3 += a[i + 3]
        r4 += a[i + 4]
        r5 += a[i + 5]
        r6 += a[i + 6]
        r7 += a[i + 7]
        i += 8
    res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
    for k in range(i, n):
        res += a[k]
    return res


@jit
def eam_pass1(
    pk, pc, ps, pdx, pn,
    dk, dc, ds, ddx, dn,
    i, j, r, n,
):
    """Pass 1 of the two-pass EAM evaluation over a half pair list.

    Twin of the first block of :func:`repro.md.forces.eam_evaluate`:
    pair/density table lookups per pair, then the density scatter as two
    bincount-order accumulations combined elementwise.  Returns
    ``(phi, dphi, dfd, rho)``; ``fd`` is consumed internally.
    """
    m = r.shape[0]
    phi = np.empty(m)
    dphi = np.empty(m)
    fd = np.empty(m)
    dfd = np.empty(m)
    for q in range(m):
        v, dv = _table_vd(pk, pc, ps, pdx, pn, r[q])
        phi[q] = v
        dphi[q] = dv
        v, dv = _table_vd(dk, dc, ds, ddx, dn, r[q])
        fd[q] = v
        dfd[q] = dv
    acc_i = np.zeros(n)
    acc_j = np.zeros(n)
    for q in range(m):
        acc_i[i[q]] += fd[q]
    for q in range(m):
        acc_j[j[q]] += fd[q]
    rho = acc_i + acc_j
    return phi, dphi, dfd, rho


@jit
def eam_pass2(i, j, d, r, dphi, dfd, demb, n):
    """Pass 2: force coefficients and the per-axis bincount scatter.

    ``forces[:, k] = bincount(i, fvec_k) - bincount(j, fvec_k)`` becomes
    two accumulator matrices subtracted elementwise at the end.
    """
    m = r.shape[0]
    acc_i = np.zeros((n, 3))
    acc_j = np.zeros((n, 3))
    for q in range(m):
        c = (dphi[q] + (demb[i[q]] + demb[j[q]]) * dfd[q]) / r[q]
        for k in range(3):
            w = c * d[q, k]
            acc_i[i[q], k] += w
            acc_j[j[q], k] += w
    return acc_i - acc_j


@jit
def rate_batch(
    ek, ec, es, edx, en,
    e_matrix, e_valid, phi_slots, f_slots,
    first_matrix, first_valid, occ, vrows,
    e_m0, de_min,
):
    """Batched vacancy-hop migration energies (Equation 4, minus the exp).

    Twin of :meth:`repro.kmc.events.KMCModel.vacancy_events_batch` up to
    (but excluding) ``rates = nu * exp(-de/kt)``: returns ``(counts,
    targets, de)`` with events in the same row-major per-vacancy order,
    every row reduction running NumPy's pairwise order via
    :func:`pairwise_sum`.  ``occ`` uses the ATOM=1/VACANCY=0 codes.
    """
    nv = vrows.shape[0]
    mf = first_matrix.shape[1]
    me = e_matrix.shape[1]
    counts = np.zeros(nv, np.int64)
    ntot = 0
    for a in range(nv):
        v = vrows[a]
        c = 0
        for s in range(mf):
            if first_valid[v, s] and occ[first_matrix[v, s]] == 1:
                c += 1
        counts[a] = c
        ntot += c
    targets = np.empty(ntot, np.int64)
    vidx = np.empty(ntot, np.int64)
    pos = 0
    for a in range(nv):
        v = vrows[a]
        for s in range(mf):
            t = first_matrix[v, s]
            if first_valid[v, s] and occ[t] == 1:
                targets[pos] = t
                vidx[pos] = a
                pos += 1
    de = np.empty(ntot)
    if ntot == 0:
        return counts, targets, de
    # Per-vacancy (sum phi, sum f) under current occupancy; masked slots
    # contribute 0.0 * slot exactly as the occ_n product does.
    s_phi = np.empty(nv)
    s_f = np.empty(nv)
    tmp = np.empty(me)
    for a in range(nv):
        v = vrows[a]
        for s in range(me):
            w = float(occ[e_matrix[v, s]]) if e_valid[v, s] else 0.0
            tmp[s] = w * phi_slots[v, s]
        s_phi[a] = pairwise_sum(tmp, me)
        for s in range(me):
            w = float(occ[e_matrix[v, s]]) if e_valid[v, s] else 0.0
            tmp[s] = w * f_slots[v, s]
        s_f[a] = pairwise_sum(tmp, me)
    for e in range(ntot):
        t = targets[e]
        # E_before: EAM site energy of the hopping atom at its origin t.
        for s in range(me):
            w = float(occ[e_matrix[t, s]]) if e_valid[t, s] else 0.0
            tmp[s] = w * phi_slots[t, s]
        bp = pairwise_sum(tmp, me)
        for s in range(me):
            w = float(occ[e_matrix[t, s]]) if e_valid[t, s] else 0.0
            tmp[s] = w * f_slots[t, s]
        bf = pairwise_sum(tmp, me)
        e_before = 0.5 * bp + _table_v(ek, ec, es, edx, en, bf)
        # E_after: sums at the vacancy row minus the target's own slots
        # (the match-product keeps 0.0 * phi ordering of the NumPy path).
        v = vrows[vidx[e]]
        for s in range(me):
            mm = 1.0 if (e_valid[v, s] and e_matrix[v, s] == t) else 0.0
            tmp[s] = phi_slots[v, s] * mm
        dphi = pairwise_sum(tmp, me)
        for s in range(me):
            mm = 1.0 if (e_valid[v, s] and e_matrix[v, s] == t) else 0.0
            tmp[s] = f_slots[v, s] * mm
        df = pairwise_sum(tmp, me)
        e_after = 0.5 * (s_phi[vidx[e]] - dphi) + _table_v(
            ek, ec, es, edx, en, s_f[vidx[e]] - df
        )
        val = e_m0 + 0.5 * (e_after - e_before)
        de[e] = val if val > de_min else de_min
    return counts, targets, de
