"""Optional numba JIT shim.

The kernel implementations in :mod:`repro.kernels.impl` are written as
plain scalar loops so that they are *also* valid pure-Python/NumPy code:
with numba importable every function is compiled with ``njit``, without
it the very same functions run interpreted.  Tests therefore exercise
the exact loop algorithms (and their bit-identity against the NumPy
reference path) whether or not the container ships numba — only the
*speed* differs.

Nothing is ever installed here: numba is detected, never required.
``REPRO_NO_NUMBA=1`` forces the plain-Python path even when numba is
importable (used by the CI fallback leg and the dispatch tests).
"""

from __future__ import annotations

import os

HAVE_NUMBA = False
_numba = None

if not os.environ.get("REPRO_NO_NUMBA"):
    try:  # pragma: no cover - exercised only where numba is installed
        import numba as _numba  # type: ignore[no-redef]

        HAVE_NUMBA = True
    except ImportError:
        _numba = None
        HAVE_NUMBA = False


def jit(func):
    """``numba.njit(cache=True)`` when available, identity otherwise.

    ``cache=True`` persists the compiled artifacts next to the module so
    repeat processes (the per-rank forks of the process backend!) skip
    recompilation.  ``fastmath`` stays off: the kernels are bit-identity
    twins of the NumPy reference path, and fastmath would license the
    reassociation/FMA contraction that breaks it.
    """
    if HAVE_NUMBA:  # pragma: no cover - exercised only with numba
        return _numba.njit(cache=True)(func)
    return func
