"""Kernel backend dispatch: NumPy reference vs optional compiled loops.

The EAM two-pass evaluation (:mod:`repro.md.forces`) and the batched
vacancy-rate kernel (:mod:`repro.kmc.events`) each have two
interchangeable implementations:

* ``numpy`` — the vectorized reference path, always available.
* ``numba`` — the scalar-loop kernels of :mod:`repro.kernels.impl`,
  compiled with ``numba.njit`` when numba is importable.  The loops are
  written to be bit-identical to the NumPy path (same accumulation
  order, same pairwise-summation tree, no fastmath), so the existing
  thread-vs-process equivalence tests hold across kernel backends too.

Selection mirrors the runtime backend convention: explicit argument
beats the ``REPRO_KERNELS`` environment variable beats the ``auto``
default (numba if importable, else numpy).  Requesting ``numba`` where
numba is missing degrades gracefully to the NumPy path with a one-shot
``RuntimeWarning`` and a ``kernels.numba_unavailable`` observe counter —
never an error, because the physics is identical either way.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from repro import observe as obs
from repro.kernels import impl
from repro.kernels._jit import HAVE_NUMBA

KERNEL_BACKENDS = ("numpy", "numba", "auto")

#: Widest per-row reduction the compiled kernels reproduce bit-exactly:
#: NumPy's pairwise summation switches from the single eight-accumulator
#: block to a recursive split past 128 elements, so wider energy-shell
#: rows (a huge ``energy_cutoff``) fall back to the NumPy path.
MAX_ROW_WIDTH = 128

#: Cached-on-object marker for tables the compiled path cannot consume.
_UNSUPPORTED = ("unsupported-table-layout",)

_EMPTY_COEFF = np.empty((0, 7))
_EMPTY_SAMPLES = np.empty(0)

_warned_missing_numba = False


def numba_available() -> bool:
    """Whether the compiled kernel path can actually compile."""
    return HAVE_NUMBA


def resolve_kernels(choice: str | None = None) -> str:
    """Normalize a kernel-backend choice to ``'numpy'`` or ``'numba'``.

    Explicit ``choice`` beats ``REPRO_KERNELS`` beats ``auto``; unset,
    empty, or whitespace-only environment values fall through to the
    default, mirroring :func:`repro.runtime.simmpi.resolve_backend`.
    """
    global _warned_missing_numba
    if choice is None:
        env = os.environ.get("REPRO_KERNELS")
        choice = env.strip().lower() if env and env.strip() else "auto"
    else:
        choice = choice.strip().lower()
    if choice not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {choice!r}; expected one of "
            f"{KERNEL_BACKENDS}"
        )
    if choice == "auto":
        return "numba" if HAVE_NUMBA else "numpy"
    if choice == "numba" and not HAVE_NUMBA:
        obs.add("kernels.numba_unavailable")
        if not _warned_missing_numba:
            _warned_missing_numba = True
            warnings.warn(
                "REPRO_KERNELS=numba requested but numba is not importable; "
                "falling back to the (bit-identical) NumPy kernels",
                RuntimeWarning,
                stacklevel=2,
            )
        return "numpy"
    return choice


def selected() -> str:
    """The kernel backend active for this call site (env-resolved)."""
    return resolve_kernels(None)


def table_payload(table):
    """Unpacked ``(kind, coeff, samples, dx, nseg)`` of a table, or None.

    Supports both interpolation layouts; anything else (future table
    types) returns ``None`` and the caller stays on the NumPy path.  The
    payload is cached on the table object — tables are immutable after
    construction.
    """
    cached = getattr(table, "_kernel_payload", None)
    if cached is _UNSUPPORTED:
        return None
    if cached is not None:
        return cached
    layout = getattr(table, "layout", None)
    if layout == "traditional":
        payload = (
            impl.KIND_SPLINE,
            np.ascontiguousarray(table.coeff, dtype=np.float64),
            _EMPTY_SAMPLES,
            float(table.dx),
            int(table.n),
        )
    elif layout == "compacted":
        payload = (
            impl.KIND_COMPACT,
            _EMPTY_COEFF,
            np.ascontiguousarray(table.samples, dtype=np.float64),
            float(table.dx),
            int(table.n),
        )
    else:
        payload = None
    try:
        table._kernel_payload = payload if payload is not None else _UNSUPPORTED
    except (AttributeError, TypeError):  # slotted/frozen table type
        pass
    return payload


def eam_payloads(tables):
    """Payload triple (pair, density, embedding) of a TableSet, or None."""
    cached = getattr(tables, "_kernel_payloads", None)
    if cached is _UNSUPPORTED:
        return None
    if cached is not None:
        return cached
    triple = tuple(
        table_payload(t)
        for t in (tables.pair, tables.density, tables.embedding)
    )
    result = None if any(p is None for p in triple) else triple
    try:
        tables._kernel_payloads = result if result is not None else _UNSUPPORTED
    except (AttributeError, TypeError):
        pass
    return result


def eam_fused(payloads, i, j, d, r, n):
    """Compiled two-pass EAM evaluation; returns (phi, rho, emb, forces).

    Inputs are upcast to contiguous int64/float64 — an exact conversion,
    so float32 pair geometry produces the same float64 results the NumPy
    path gets from its mixed-precision expressions.
    """
    pair_pl, dens_pl, emb_pl = payloads
    i64 = np.ascontiguousarray(i, dtype=np.int64)
    j64 = np.ascontiguousarray(j, dtype=np.int64)
    d64 = np.ascontiguousarray(d, dtype=np.float64)
    r64 = np.ascontiguousarray(r, dtype=np.float64)
    phi, dphi, dfd, rho = impl.eam_pass1(
        *pair_pl, *dens_pl, i64, j64, r64, n
    )
    emb, demb = impl.table_vd(*emb_pl, rho)
    forces = impl.eam_pass2(i64, j64, d64, r64, dphi, dfd, demb, n)
    return phi, rho, emb, forces


def rate_batch(
    emb_payload,
    e_matrix,
    e_valid,
    phi_slots,
    f_slots,
    first_matrix,
    first_valid,
    occ,
    vrows,
    e_m0,
    de_min,
):
    """Compiled batched migration energies; returns (counts, targets, de).

    The caller applies ``rates = nu * np.exp(-de / kt)`` itself: libm and
    NumPy disagree about ``exp`` in the last ulp, so the transcendental
    stays on the NumPy side of the fence in both backends.
    """
    return impl.rate_batch(
        *emb_payload,
        np.ascontiguousarray(e_matrix, dtype=np.int64),
        np.ascontiguousarray(e_valid, dtype=np.bool_),
        np.ascontiguousarray(phi_slots, dtype=np.float64),
        np.ascontiguousarray(f_slots, dtype=np.float64),
        np.ascontiguousarray(first_matrix, dtype=np.int64),
        np.ascontiguousarray(first_valid, dtype=np.bool_),
        np.ascontiguousarray(occ, dtype=np.int8),
        np.ascontiguousarray(vrows, dtype=np.int64),
        float(e_m0),
        float(de_min),
    )
