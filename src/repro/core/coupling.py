"""The coupled MD-KMC pipeline (paper §2, Figure 7 step #0).

"MD simulates the defect generation caused by cascade collision, and
outputs the coordinates of vacancy and the information of atoms. KMC
simulates the defect evolution and vacancies clustering."

:class:`CoupledSimulation` wires the stages together:

1. build the BCC iron lattice and thermalize it,
2. run the PKA cascade with the MD engine (lattice neighbor list tracking
   run-away atoms and vacancies),
3. map the MD damage onto the on-lattice KMC occupancy ("#0: Model
   initialization" of Figure 7),
4. evolve the vacancies with AKMC (serial or parallel, any communication
   scheme),
5. translate the KMC clock into real time with the timescale formula and
   report before/after clustering statistics.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import observe as obs
from repro.core.clusters import ClusteringReport, clustering_report
from repro.core.timescale import kmc_real_time
from repro.kmc.akmc import ParallelAKMC, SerialAKMC
from repro.kmc.events import ATOM, VACANCY, RateParameters
from repro.lattice.bcc import BCCLattice
from repro.md.cascade import CascadeConfig, CascadeResult, run_cascade
from repro.md.engine import MDConfig, MDEngine
from repro.potential.eam import EAMPotential
from repro.potential.fe import make_fe_potential
from repro.runtime.faults import FaultInjector, InjectedFault, resolve_plan
from repro.runtime.simmpi import WorldAborted


@dataclass(frozen=True)
class CoupledConfig:
    """End-to-end configuration of one coupled run.

    Attributes
    ----------
    cells:
        Conventional cells per axis of the cubic simulation box.
    temperature:
        System temperature (K); the paper evaluates at 600 K.
    cascade:
        MD cascade parameters (``None`` selects defaults at the chosen
        temperature).
    rates:
        KMC rate parameters (``None`` = defaults at ``temperature``).
    kmc_max_events:
        Serial KMC event budget.
    kmc_nranks / kmc_scheme:
        When ``kmc_nranks`` is set the KMC stage runs on the parallel
        engine with the chosen communication scheme.
    kmc_backend:
        Execution backend for the parallel KMC world (``"thread"`` /
        ``"process"`` / ``"overdecomposed"``; ``None`` defers to
        ``REPRO_BACKEND``).
    kmc_workers:
        Physical worker count for the overdecomposed / rank-group
        backends (``None`` defers to ``REPRO_WORKERS`` / cpu count).
    kmc_max_cycles:
        Parallel KMC cycle budget.
    seed:
        Master seed.
    table_points:
        Interpolation table resolution (5000 in the paper; smaller speeds
        up toy runs without changing behaviour).
    recombination_radius:
        Interstitial-vacancy annihilation radius (angstrom) applied when
        mapping MD damage onto the KMC sites: a run-away atom within this
        distance of a vacancy recombines athermally before the KMC stage
        (the standard cascade-annealing capture radius; ``None`` disables
        recombination and every MD vacancy survives, as in the base
        pipeline).
    sunway_model:
        When ``True`` an extra pipeline stage prices one EAM force step
        of the post-cascade state on the Sunway SW26010 machine model
        (best optimization rung of Figure 9), attaching the modeled
        kernel time and DMA inventory to the result — the modeled
        hardware cost next to the host cost.
    faults:
        Fault-injection plan for the KMC stage — a
        :class:`~repro.runtime.faults.FaultPlan` or its DSL string (e.g.
        ``"crash:rank=1,cycle=3"``).  Injected crashes are survived by
        the recovery supervisor: the stage restarts from the last good
        checkpoint (or from scratch) until it completes, to a final
        state bit-identical to a fault-free run.
    checkpoint_every:
        Write a resumable KMC checkpoint every N cycles (parallel) or N
        events (serial).  ``None`` disables checkpointing; recovery then
        replays the whole stage.
    checkpoint_dir:
        Where checkpoints live.  ``None`` uses a fresh temporary
        directory, so no run artifacts land in the working tree unless a
        path is passed explicitly.
    max_recoveries:
        Recovery attempts before the supervisor gives up and re-raises.
    watchdog:
        Per-wait deadline (seconds) for the parallel KMC runtime's
        blocking recv/probe/collectives; ``None`` (default) keeps the
        hot paths deadline-free.
    trajectory:
        Path of a streaming chunked trajectory store
        (:mod:`repro.io.store`).  When set, the run appends occupancy
        frames incrementally — the post-MD damage state first, then the
        KMC evolution at every ``trajectory_every`` fence — so the
        scientific output lands on disk as the run progresses instead
        of accumulating in memory.  The store participates in recovery:
        after a fault it is rewound to the restored checkpoint's clock
        and the resumed attempt re-records bit-identically.
    trajectory_every:
        Record a frame every N serial events / parallel cycles
        (default 1).
    """

    cells: int = 8
    temperature: float = 600.0
    cascade: CascadeConfig | None = None
    rates: RateParameters | None = None
    kmc_max_events: int = 500
    kmc_nranks: int | None = None
    kmc_scheme: str = "ondemand"
    kmc_backend: str | None = None
    kmc_workers: int | None = None
    kmc_max_cycles: int = 50
    seed: int = 2018
    table_points: int = 2000
    recombination_radius: float | None = None
    sunway_model: bool = False
    faults: object = None
    checkpoint_every: int | None = None
    checkpoint_dir: str | None = None
    max_recoveries: int = 3
    watchdog: float | None = None
    trajectory: str | None = None
    trajectory_every: int = 1

    def __post_init__(self) -> None:
        if self.cells < 5:
            raise ValueError(
                "need at least 5 cells per axis (box >= 2*(cutoff+skin))"
            )
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")
        if self.trajectory_every < 1:
            raise ValueError("trajectory_every must be >= 1")


def recombine_frenkel_pairs(
    lattice: BCCLattice,
    vacancy_rows: np.ndarray,
    interstitial_positions: np.ndarray,
    radius: float,
) -> np.ndarray:
    """Surviving vacancy rows after interstitial-vacancy recombination.

    Greedy nearest-pair annihilation: each interstitial captures the
    closest surviving vacancy within ``radius`` (minimum-image distance).
    Returns the rows of vacancies that escape recombination.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    from repro.lattice.box import Box

    box = Box.for_lattice(lattice)
    surviving = list(int(r) for r in vacancy_rows)
    vac_pos = {r: lattice.position_of(r) for r in surviving}
    for x in np.asarray(interstitial_positions, dtype=float).reshape(-1, 3):
        if not surviving:
            break
        dists = np.array(
            [float(box.distance(x, vac_pos[r])) for r in surviving]
        )
        nearest = int(np.argmin(dists))
        if dists[nearest] <= radius:
            surviving.pop(nearest)
    return np.asarray(surviving, dtype=np.int64)


@dataclass
class CoupledResult:
    """Everything a coupled run produces."""

    cascade: CascadeResult
    vacancies_after_md: np.ndarray
    vacancies_after_kmc: np.ndarray
    report_after_md: ClusteringReport
    report_after_kmc: ClusteringReport
    kmc_time: float
    kmc_events: int
    real_time_seconds: float
    comm_stats: dict | None = None
    #: Modeled SW26010 cost of one post-cascade EAM step (when enabled).
    sunway_report: dict | None = None
    #: How many times the KMC stage was restarted after a fault.
    recoveries: int = 0
    #: Crashed logical ranks replayed in place on a surviving worker
    #: (overdecomposed backend) — no world restart involved.
    migrations: int = 0
    #: Injector counters (crashes/delays/duplicates/stalls), when faults
    #: were planned.
    fault_report: dict | None = None
    #: Trajectory store path (when ``config.trajectory`` was set) and
    #: the number of frames it holds after finalize.
    trajectory_path: str | None = None
    trajectory_frames: int | None = None


class CoupledSimulation:
    """Driver of the full MD -> KMC pipeline.

    Parameters
    ----------
    config / potential:
        The run configuration and an optional pre-built potential.
    progress:
        Optional callable invoked with a stage name (``"setup"``,
        ``"cascade"``, ``"checkpoint"``, ``"sunway_model"``,
        ``"map_damage"``, ``"trajectory_init"``, ``"kmc"``,
        ``"analysis"``) as each pipeline stage begins — the metric
        streaming hook the service worker uses to publish live
        observe-registry snapshots at stage boundaries.  Exceptions it
        raises propagate (a broken hook is the caller's bug).
    """

    def __init__(
        self,
        config: CoupledConfig | None = None,
        potential: EAMPotential | None = None,
        progress=None,
    ) -> None:
        self.config = config or CoupledConfig()
        self.progress = progress
        self.lattice = BCCLattice(
            self.config.cells, self.config.cells, self.config.cells
        )
        self.potential = potential or make_fe_potential(n=self.config.table_points)

    def _notify(self, stage: str) -> None:
        if self.progress is not None:
            self.progress(stage)

    def _build_md_engine(self) -> MDEngine:
        """Stage 1: construct the MD engine over the lattice."""
        cfg = self.config
        return MDEngine(
            self.lattice,
            self.potential,
            MDConfig(temperature=cfg.temperature, seed=cfg.seed),
        )

    def run_md_stage(self) -> CascadeResult:
        """Stage 1-2: thermalize and run the cascade."""
        cfg = self.config
        cascade_cfg = cfg.cascade or CascadeConfig(temperature=cfg.temperature)
        return run_cascade(self._build_md_engine(), cascade_cfg)

    def model_sunway_step(self, engine: MDEngine) -> dict:
        """Optional stage: price one EAM step on the SW26010 machine model.

        Uses the fully optimized kernel variant (compacted table + data
        reuse + double buffering) over the engine's current state, so a
        profiled coupled run reports the modeled hardware cost of its MD
        force step alongside the measured host cost.
        """
        from repro.sunway.arch import SunwayArch
        from repro.sunway.kernel import STRATEGY_LADDER, BlockedEAMKernel

        kernel = BlockedEAMKernel(
            SunwayArch(),
            self.potential,
            STRATEGY_LADDER[-1],
            table_points=self.config.table_points,
        )
        report = kernel.run_step(engine.state, engine.nblist)
        return {
            "strategy": report.strategy.name,
            "modeled_step_time_s": report.total_time,
            "modeled_compute_time_s": report.compute_time,
            "modeled_dma_time_s": report.dma_time,
            "dma_operations": report.dma.operations,
            "dma_bytes": report.dma.total_bytes,
            "interactions": report.interactions,
            "natoms": report.natoms,
        }

    def occupancy_from_cascade(self, cascade: CascadeResult) -> np.ndarray:
        """Stage 3: map MD damage onto the KMC site array.

        Per the paper's model only "the coordinates of vacancy" seed the
        KMC stage (interstitials diffuse away far below the KMC horizon);
        with ``recombination_radius`` set, close Frenkel pairs annihilate
        first (athermal cascade annealing).
        """
        occ = np.full(self.lattice.nsites, ATOM, dtype=np.int8)
        occ[cascade.vacancy_rows] = VACANCY
        radius = self.config.recombination_radius
        if radius is not None and len(cascade.runaway_positions):
            surviving = recombine_frenkel_pairs(
                self.lattice,
                cascade.vacancy_rows,
                cascade.runaway_positions,
                radius,
            )
            occ[:] = ATOM
            occ[surviving] = VACANCY
        return occ

    def run_kmc_stage(self, occupancy: np.ndarray):
        """Stage 4: evolve the damage with AKMC (no fault machinery)."""
        result, _recoveries, _report = self._run_kmc_supervised(
            occupancy, plain=True
        )
        return result

    # ------------------------------------------------------------------
    # Fault-tolerant KMC stage (the recovery supervisor)
    # ------------------------------------------------------------------
    def _checkpoint_dir(self) -> Path:
        cfg = self.config
        if cfg.checkpoint_dir is not None:
            path = Path(cfg.checkpoint_dir)
            path.mkdir(parents=True, exist_ok=True)
            return path
        # Run artifacts never land in the working tree by default.
        return Path(tempfile.mkdtemp(prefix="repro-checkpoint-"))

    def _run_kmc_attempt(self, occupancy, injector, resume, ckpt_path):
        """One KMC attempt: fresh engine, optional resume point."""
        cfg = self.config
        params = cfg.rates or RateParameters(temperature=cfg.temperature)
        every = cfg.checkpoint_every if ckpt_path is not None else None
        path = ckpt_path if every is not None else None
        traj = cfg.trajectory
        traj_every = cfg.trajectory_every if traj is not None else None
        if cfg.kmc_nranks is None:
            engine = SerialAKMC(
                self.lattice,
                self.potential,
                params,
                occupancy,
                seed=cfg.seed,
                faults=injector,
            )
            if resume is not None:
                engine.restore(resume)
            return engine.run(
                max_events=cfg.kmc_max_events,
                checkpoint_every=every,
                checkpoint_path=path,
                trajectory=traj,
                trajectory_every=traj_every,
            )
        engine = ParallelAKMC(
            self.lattice,
            self.potential,
            params,
            nranks=cfg.kmc_nranks,
            scheme=cfg.kmc_scheme,
            seed=cfg.seed,
            faults=injector,
            watchdog=cfg.watchdog,
            backend=cfg.kmc_backend,
            workers=cfg.kmc_workers,
        )
        occ0 = resume.occupancy if resume is not None else occupancy
        return engine.run(
            occ0,
            max_cycles=cfg.kmc_max_cycles,
            checkpoint_every=every,
            checkpoint_path=path,
            resume=resume,
            trajectory=traj,
            trajectory_every=traj_every,
        )

    def _run_kmc_supervised(self, occupancy: np.ndarray, plain: bool = False):
        """Stage 4 under the fault supervisor.

        Runs KMC attempts until one completes.  On a rank failure
        (injected or organic), a world abort, or a watchdog/world
        timeout, the supervisor restores the last good checkpoint and
        resumes — or replays the stage from the start when no checkpoint
        exists yet.  Both paths converge on a final state bit-identical
        to a fault-free run: the event streams are pure functions of
        (seed, rank, cycle, sector) for the parallel engine and the
        checkpoint carries the exact RNG state for the serial one.

        Returns ``(result, recoveries, fault_report)``.
        """
        cfg = self.config
        plan = None if plain else resolve_plan(cfg.faults)
        supervised = plan is not None or cfg.checkpoint_every is not None
        if plain or not supervised:
            # The historical direct path: no injector, no checkpoints.
            return (
                self._run_kmc_attempt(occupancy, None, None, None),
                0,
                None,
            )
        injector = FaultInjector(plan) if plan is not None else None
        ckpt_path = self._checkpoint_dir() / "kmc_checkpoint.npz"
        recoveries = 0
        resume = None
        while True:
            try:
                result = self._run_kmc_attempt(
                    occupancy, injector, resume, ckpt_path
                )
                report = injector.snapshot() if injector is not None else None
                return result, recoveries, report
            except (WorldAborted, InjectedFault, TimeoutError, RuntimeError):
                recoveries += 1
                obs.add("runtime.recoveries")
                if recoveries > cfg.max_recoveries:
                    raise
            with obs.phase("coupling.recover"):
                # Restore the last good checkpoint; if the fault struck
                # before the first one landed, replay from the start.
                if ckpt_path.exists():
                    from repro.io.checkpoint import load_kmc_checkpoint

                    resume = load_kmc_checkpoint(ckpt_path)
                else:
                    resume = None
                if cfg.trajectory is not None:
                    # Rewind the store to the restored clock: frames the
                    # crashed attempt wrote beyond the checkpoint are
                    # dropped and re-recorded bit-identically by the
                    # resumed attempt.  With no checkpoint yet, rewind
                    # to 0.0 keeps only the post-MD initial frame.
                    from repro.io.store import is_store, rewind_store

                    if is_store(cfg.trajectory):
                        rewind_store(
                            cfg.trajectory,
                            resume.time if resume is not None else 0.0,
                        )
                obs.add(
                    "coupling.recover.from_checkpoint"
                    if resume is not None
                    else "coupling.recover.from_scratch"
                )

    def run(self) -> CoupledResult:
        """Execute the full pipeline and assemble the result.

        The five stages of the Figure 7 pipeline each run under their own
        observation phase (``coupled.setup`` .. ``coupled.analysis``), so
        a profiled run shows exactly where the coupled wall clock goes.
        """
        cfg = self.config
        with obs.phase("coupled.pipeline"):
            self._notify("setup")
            with obs.phase("coupled.setup"):
                engine = self._build_md_engine()
                cascade_cfg = cfg.cascade or CascadeConfig(
                    temperature=cfg.temperature
                )
            self._notify("cascade")
            with obs.phase("coupled.cascade"):
                cascade = run_cascade(engine, cascade_cfg)
            if cfg.checkpoint_dir is not None:
                # Persist the post-cascade MD engine state so a recovery
                # (or a later session) never has to replay the MD stage.
                from repro.io.checkpoint import save_checkpoint

                self._notify("checkpoint")
                with obs.phase("coupled.checkpoint"):
                    save_checkpoint(
                        self._checkpoint_dir() / "md_cascade.npz", engine
                    )
            sunway_report = None
            if cfg.sunway_model:
                self._notify("sunway_model")
                with obs.phase("coupled.sunway_model"):
                    sunway_report = self.model_sunway_step(engine)
            self._notify("map_damage")
            with obs.phase("coupled.map_damage"):
                occ0 = self.occupancy_from_cascade(cascade)
                vac_md = np.flatnonzero(occ0 == VACANCY)
            if cfg.trajectory is not None:
                # Open the store fresh and seed it with the post-MD
                # damage state at clock 0 — the "before" frame of the
                # paper's Figure 17.  The KMC stage then appends to it
                # incrementally (rank 0 via the gather path when
                # parallel), and recovery rewinds it with the
                # checkpoints.
                from repro.io.store import TrajectoryWriter

                self._notify("trajectory_init")
                with obs.phase("io.trajectory.init"):
                    writer = TrajectoryWriter(
                        cfg.trajectory, self.lattice, mode="w"
                    )
                    writer.append(0.0, occ0)
                    writer.close(final=False)
            self._notify("kmc")
            with obs.phase("coupled.kmc"):
                kmc, recoveries, fault_report = self._run_kmc_supervised(occ0)
            trajectory_frames = None
            if cfg.trajectory is not None:
                from repro.io.store import TrajectoryReader, finalize_store

                with obs.phase("io.trajectory.finalize"):
                    finalize_store(cfg.trajectory)
                    trajectory_frames = len(TrajectoryReader(cfg.trajectory))
            self._notify("analysis")
            with obs.phase("coupled.analysis"):
                c_mc = len(vac_md) / self.lattice.nsites
                # KMC clock runs in ps; the timescale formula takes seconds.
                real_seconds = kmc_real_time(
                    t_threshold=kmc.time * 1e-12,
                    c_mc=c_mc,
                    temperature=cfg.temperature,
                )
                report_md = clustering_report(self.lattice, vac_md)
                report_kmc = clustering_report(self.lattice, kmc.vacancy_ranks)
        return CoupledResult(
            cascade=cascade,
            vacancies_after_md=vac_md,
            vacancies_after_kmc=kmc.vacancy_ranks,
            report_after_md=report_md,
            report_after_kmc=report_kmc,
            kmc_time=kmc.time,
            kmc_events=kmc.events,
            real_time_seconds=real_seconds,
            comm_stats=kmc.comm_stats,
            sunway_report=sunway_report,
            recoveries=recoveries,
            migrations=(kmc.comm_stats or {}).get("migrations", 0),
            fault_report=fault_report,
            trajectory_path=cfg.trajectory,
            trajectory_frames=trajectory_frames,
        )
