"""The paper's temporal-scale arithmetic (§3).

"The temporal scale (real time) of KMC simulation can be calculated by the
formula t_real = t_threshold * C_MC_v / C_real_v [2]. ... C_real_v is
obtained by C_real_v = exp(-E_v+ / (kB * T))" — with t_threshold = 2e-4,
C_MC = 2e-6 and T = 600 K the paper reports t_real = 19.2 days.

These few lines are the bridge between KMC's internal clock and the
physical claim in the abstract ("3.2e10 atoms in 19.2 days temporal
scale"), so they are reproduced exactly and pinned by tests.
"""

from __future__ import annotations

import math

from repro.constants import (
    DAY_TO_S,
    DEFAULT_TEMPERATURE,
    FE_VACANCY_FORMATION_ENERGY,
    KB_EV,
)


def real_vacancy_concentration(
    formation_energy: float = FE_VACANCY_FORMATION_ENERGY,
    temperature: float = DEFAULT_TEMPERATURE,
) -> float:
    """Equilibrium vacancy concentration ``exp(-E_v+ / kB T)``."""
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    if formation_energy <= 0:
        raise ValueError(
            f"formation energy must be positive, got {formation_energy}"
        )
    return math.exp(-formation_energy / (KB_EV * temperature))


def kmc_real_time(
    t_threshold: float,
    c_mc: float,
    formation_energy: float = FE_VACANCY_FORMATION_ENERGY,
    temperature: float = DEFAULT_TEMPERATURE,
) -> float:
    """Real time (seconds) represented by a KMC run.

    Parameters
    ----------
    t_threshold:
        The KMC time threshold (seconds of simulation clock).
    c_mc:
        Vacancy concentration in the simulation box ("easily obtained by
        calculating the percentage of vacancies in atoms").
    formation_energy, temperature:
        Parameters of the equilibrium concentration.
    """
    if t_threshold < 0:
        raise ValueError(f"t_threshold must be non-negative, got {t_threshold}")
    if not 0 <= c_mc <= 1:
        raise ValueError(f"c_mc must be a concentration in [0, 1], got {c_mc}")
    c_real = real_vacancy_concentration(formation_energy, temperature)
    return t_threshold * c_mc / c_real


def paper_timescale_days() -> float:
    """The paper's headline number from its own constants (~19.2 days)."""
    return (
        kmc_real_time(t_threshold=2e-4, c_mc=2e-6, temperature=600.0) / DAY_TO_S
    )
