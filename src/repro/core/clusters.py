"""Vacancy cluster identification and clustering statistics.

The paper's Figure 17 shows the scientific payoff of the coupled pipeline:
vacancies are "very dispersive" after MD and form clusters after KMC.  We
quantify that with connected-component analysis over the vacancy adjacency
graph (two vacancies are bonded when within a neighbor-shell distance) and
dispersion metrics on the vacancy point cloud.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.lattice.bcc import BCCLattice
from repro.lattice.box import Box


def vacancy_clusters(
    lattice: BCCLattice,
    vacancy_ranks: np.ndarray,
    bond_distance: float | None = None,
) -> list[set[int]]:
    """Partition vacancies into clusters of mutually adjacent sites.

    Two vacancies belong to the same cluster when connected through a
    chain of pairs within ``bond_distance`` (default: just past the second
    BCC shell, the conventional nearest-neighbor cluster criterion).
    Returns a list of site-rank sets, largest first.
    """
    vacancy_ranks = np.asarray(vacancy_ranks, dtype=np.int64)
    if bond_distance is None:
        bond_distance = 1.05 * lattice.a
    if len(vacancy_ranks) == 0:
        return []
    box = Box.for_lattice(lattice)
    pos = lattice.position_of(vacancy_ranks)
    graph = nx.Graph()
    graph.add_nodes_from(int(r) for r in vacancy_ranks)
    # Pairwise adjacency; vacancy counts are small by construction
    # (concentrations of 1e-6..1e-4), so O(V^2) is fine.
    delta = box.minimum_image(pos[None, :, :] - pos[:, None, :])
    dist = np.linalg.norm(delta, axis=-1)
    ii, jj = np.nonzero(np.triu(dist <= bond_distance, k=1))
    for a, b in zip(ii, jj, strict=True):
        graph.add_edge(int(vacancy_ranks[a]), int(vacancy_ranks[b]))
    comps = [set(c) for c in nx.connected_components(graph)]
    return sorted(comps, key=len, reverse=True)


def cluster_sizes(clusters: list[set[int]]) -> np.ndarray:
    """Cluster sizes, descending."""
    return np.asarray(sorted((len(c) for c in clusters), reverse=True), dtype=int)


def mean_nn_distance(lattice: BCCLattice, vacancy_ranks: np.ndarray) -> float:
    """Mean nearest-neighbor distance among vacancies (dispersion metric).

    Large when vacancies are scattered; shrinks toward the first-shell
    distance as they aggregate.
    """
    vacancy_ranks = np.asarray(vacancy_ranks, dtype=np.int64)
    if len(vacancy_ranks) < 2:
        return math.nan
    box = Box.for_lattice(lattice)
    pos = lattice.position_of(vacancy_ranks)
    delta = box.minimum_image(pos[None, :, :] - pos[:, None, :])
    dist = np.linalg.norm(delta, axis=-1)
    np.fill_diagonal(dist, np.inf)
    return float(np.mean(np.min(dist, axis=1)))


@dataclass(frozen=True)
class ClusteringReport:
    """Summary statistics of a vacancy configuration."""

    n_vacancies: int
    n_clusters: int
    max_cluster: int
    mean_cluster: float
    clustered_fraction: float
    mean_nn_distance: float

    def __str__(self) -> str:
        return (
            f"{self.n_vacancies} vacancies in {self.n_clusters} clusters "
            f"(max {self.max_cluster}, mean {self.mean_cluster:.2f}, "
            f"{100 * self.clustered_fraction:.0f}% in clusters >= 2, "
            f"mean NN distance {self.mean_nn_distance:.2f} A)"
        )


def clustering_report(
    lattice: BCCLattice,
    vacancy_ranks: np.ndarray,
    bond_distance: float | None = None,
) -> ClusteringReport:
    """Compute the full clustering summary of a vacancy set."""
    vacancy_ranks = np.asarray(vacancy_ranks, dtype=np.int64)
    clusters = vacancy_clusters(lattice, vacancy_ranks, bond_distance)
    sizes = cluster_sizes(clusters)
    n = len(vacancy_ranks)
    clustered = int(np.sum(sizes[sizes >= 2])) if len(sizes) else 0
    return ClusteringReport(
        n_vacancies=n,
        n_clusters=len(clusters),
        max_cluster=int(sizes[0]) if len(sizes) else 0,
        mean_cluster=float(np.mean(sizes)) if len(sizes) else 0.0,
        clustered_fraction=clustered / n if n else 0.0,
        mean_nn_distance=mean_nn_distance(lattice, vacancy_ranks),
    )


def clustering_report_from_store(
    store,
    frame: int = -1,
    bond_distance: float | None = None,
) -> ClusteringReport:
    """Clustering summary of one frame of an on-disk trajectory store.

    ``store`` is a :class:`repro.io.store.TrajectoryReader` or a path to
    a store directory.  Only the requested frame's chunk is decoded —
    analysis stays out-of-core no matter how long the trajectory is.
    ``frame`` indexes like a sequence (negative counts from the end).
    """
    from repro.io.store import TrajectoryReader

    reader = store if isinstance(store, TrajectoryReader) else TrajectoryReader(store)
    if frame < 0:
        frame += len(reader)
    return clustering_report(
        reader.lattice, reader.vacancy_ranks(frame), bond_distance
    )
