"""The paper's primary contribution: the coupled MD-KMC pipeline.

MD simulates cascade-collision damage over ~50 ps and hands the vacancy
inventory to AKMC, which evolves clustering over a days-scale *real* time
horizon computed by the paper's timescale formula.
"""

from repro.core.timescale import (
    real_vacancy_concentration,
    kmc_real_time,
    paper_timescale_days,
)
from repro.core.clusters import (
    vacancy_clusters,
    cluster_sizes,
    clustering_report,
    mean_nn_distance,
)
from repro.core.coupling import CoupledConfig, CoupledSimulation, CoupledResult

__all__ = [
    "real_vacancy_concentration",
    "kmc_real_time",
    "paper_timescale_days",
    "vacancy_clusters",
    "cluster_sizes",
    "clustering_report",
    "mean_nn_distance",
    "CoupledConfig",
    "CoupledSimulation",
    "CoupledResult",
]
