"""The paper's primary contribution: the coupled MD-KMC pipeline.

MD simulates cascade-collision damage over ~50 ps and hands the vacancy
inventory to AKMC, which evolves clustering over a days-scale *real* time
horizon computed by the paper's timescale formula.
"""

from repro.core.timescale import (
    real_vacancy_concentration,
    kmc_real_time,
    paper_timescale_days,
)
from repro.core.clusters import (
    vacancy_clusters,
    cluster_sizes,
    clustering_report,
    mean_nn_distance,
)
from repro.core.coupling import CoupledConfig, CoupledSimulation, CoupledResult

__all__ = [
    "CoupledConfig",
    "CoupledResult",
    "CoupledSimulation",
    "cluster_sizes",
    "clustering_report",
    "kmc_real_time",
    "mean_nn_distance",
    "paper_timescale_days",
    "real_vacancy_concentration",
    "vacancy_clusters",
]
