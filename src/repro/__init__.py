"""repro — reproduction of "Massively Scaling the Metal Microscopic Damage
Simulation on Sunway TaihuLight Supercomputer" (Li et al., ICPP 2018).

A coupled Molecular Dynamics / Kinetic Monte Carlo simulator for
irradiation damage in BCC iron, together with every substrate the paper's
scaling study depends on: the lattice neighbor list data structure, EAM
interpolation tables in traditional and compacted layouts, an in-process
MPI-semantics runtime, a Sunway SW26010 machine model with 64 KB
local-store enforcement and DMA accounting, the synchronous-sublattice
parallel AKMC with traditional / on-demand / one-sided communication
schemes, and calibrated analytical models regenerating the paper's
million-core scaling figures.

Quick start::

    from repro.core import CoupledSimulation, CoupledConfig
    result = CoupledSimulation(CoupledConfig(cells=8)).run()
    print(result.report_after_md)
    print(result.report_after_kmc)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

__version__ = "1.0.0"

from repro import constants

__all__ = [
    "__version__",
    "constants",
]
