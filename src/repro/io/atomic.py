"""Atomic, durable file replacement — the one write path every
checkpoint, dump, and index sidecar goes through.

The contract (DESIGN §"Trajectory store & checkpoint atomicity"):

* the payload lands in a *uniquely named* sibling temp file first, so
  two concurrent writers targeting the same path (a recovery supervisor
  re-running next to a straggling first attempt, job-layer workers
  sharing a checkpoint directory) can never scribble over each other's
  half-written bytes;
* the temp file is flushed **and fsynced** before ``os.replace``, so a
  power loss after the rename can never leave a truncated file where a
  good one used to be — the rename is only allowed to publish durable
  bytes;
* the rename itself is atomic (POSIX guarantees it within a
  filesystem), so readers observe either the old complete file or the
  new complete file, never a mixture;
* on any failure the temp file is removed and the original is left
  untouched.

Directory durability: after a successful replace the containing
directory is fsynced too (best-effort, POSIX only), so the rename
itself survives a crash.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path


def _fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory (no-op where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        # Platforms (or filesystems) that cannot open directories simply
        # skip directory durability; the file itself is already synced.
        return
    try:
        os.fsync(fd)
    except OSError:
        return
    finally:
        os.close(fd)


@contextmanager
def atomic_write(path, *, sync: bool = True):
    """Context manager yielding a binary file object; commit on success.

    Usage::

        with atomic_write(path) as fh:
            fh.write(payload)

    The bytes become visible at ``path`` only if the block exits
    cleanly; an exception (including a fault-injected crash mid-write)
    removes the temp file and leaves any previous ``path`` intact.

    Parameters
    ----------
    sync:
        Fsync the temp file before the rename (and the directory after).
        ``True`` is the durability contract; tests may disable it to
        exercise the tear window.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            yield fh
            fh.flush()
            if sync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            # Already gone (or undeletable): the original error below is
            # the one that matters.
            pass
        raise
    if sync:
        _fsync_dir(path.parent)


def atomic_write_bytes(path, payload: bytes, *, sync: bool = True) -> None:
    """Atomically replace ``path`` with ``payload`` (see :func:`atomic_write`)."""
    with atomic_write(path, sync=sync) as fh:
        fh.write(payload)
