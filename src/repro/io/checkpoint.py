"""Checkpoint/restore of MD engines and KMC occupancies.

A long coupled run (the paper's is 8.6 hours) must survive interruption;
checkpoints capture enough to resume: the full atom state, the run-away
atom linked lists, the step counter, and RNG-relevant seeds.
"""

from __future__ import annotations

import numpy as np

from repro.io.dump import dump_state, load_state
from repro.md.engine import MDEngine
from repro.md.neighbors.lattice_list import RunawayAtom


class CheckpointError(RuntimeError):
    """A checkpoint could not be restored into the given engine."""


def save_checkpoint(path, engine: MDEngine) -> None:
    """Write the engine's resumable state to ``path`` (.npz)."""
    runs = engine.nblist.runaways
    extra = {
        "step": np.array(engine._step),
        "runaway_ids": np.array([a.id for a in runs], dtype=np.int64),
        "runaway_x": np.array([a.x for a in runs]).reshape(-1, 3),
        "runaway_v": np.array([a.v for a in runs]).reshape(-1, 3),
        "runaway_f": np.array([a.f for a in runs]).reshape(-1, 3),
        "runaway_rho": np.array([a.rho for a in runs]),
        "runaway_host": np.array([a.host for a in runs], dtype=np.int64),
        "lattice_dims": np.array(
            [engine.lattice.nx, engine.lattice.ny, engine.lattice.nz]
        ),
        "lattice_a": np.array(engine.lattice.a),
    }
    dump_state(path, engine.state, extra)


def load_checkpoint(path, engine: MDEngine) -> None:
    """Restore a checkpoint into a compatible engine, in place."""
    state, extra = load_state(path)
    dims = extra["lattice_dims"]
    if tuple(dims) != (engine.lattice.nx, engine.lattice.ny, engine.lattice.nz):
        raise CheckpointError(
            f"lattice mismatch: checkpoint {tuple(dims)} vs engine "
            f"({engine.lattice.nx}, {engine.lattice.ny}, {engine.lattice.nz})"
        )
    if abs(float(extra["lattice_a"]) - engine.lattice.a) > 1e-12:
        raise CheckpointError("lattice constant mismatch")
    engine.state = state
    engine._step = int(extra["step"])
    engine.nblist.hosts.clear()
    for i in range(len(extra["runaway_ids"])):
        atom = RunawayAtom(
            id=int(extra["runaway_ids"][i]),
            x=extra["runaway_x"][i].copy(),
            v=extra["runaway_v"][i].copy(),
            host=int(extra["runaway_host"][i]),
            f=extra["runaway_f"][i].copy(),
            rho=float(extra["runaway_rho"][i]),
        )
        engine.nblist.hosts.setdefault(atom.host, []).append(atom)
