"""Checkpoint/restore of MD engines and KMC occupancies.

A long coupled run (the paper's is 8.6 hours) must survive interruption;
checkpoints capture enough to resume: the full atom state, the run-away
atom linked lists, the step counter, and RNG-relevant seeds.

Two checkpoint families live here:

* :func:`save_checkpoint` / :func:`load_checkpoint` — the full MD engine
  state (atoms, run-away linked lists, step counter);
* :func:`save_kmc_checkpoint` / :func:`load_kmc_checkpoint` — the
  lightweight per-cycle AKMC record the fault-recovery supervisor
  restores from: the global occupancy, the simulated clock, the cycle /
  event counters, and (for the serial engine) the exact RNG state.

Both families write through :func:`repro.io.atomic.atomic_write`
(uniquely named temp file, fsync, ``os.replace``), so a crash or power
loss mid-write can never destroy — or truncate — the last good
checkpoint, and concurrent checkpointers sharing a path never corrupt
each other's temp file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.io.atomic import atomic_write
from repro.io.dump import dump_state, load_state
from repro.md.engine import MDEngine
from repro.md.neighbors.lattice_list import RunawayAtom

#: Format marker of a KMC checkpoint file.
KMC_FORMAT = "repro-kmc-checkpoint-v1"


class CheckpointError(RuntimeError):
    """A checkpoint could not be restored into the given engine."""


def save_checkpoint(path, engine: MDEngine) -> None:
    """Atomically write the engine's resumable state to ``path`` (.npz).

    Routed through the shared atomic dump path, so an interrupted write
    never destroys the last good MD checkpoint.
    """
    runs = engine.nblist.runaways
    extra = {
        "step": np.array(engine._step),
        "runaway_ids": np.array([a.id for a in runs], dtype=np.int64),
        "runaway_x": np.array([a.x for a in runs]).reshape(-1, 3),
        "runaway_v": np.array([a.v for a in runs]).reshape(-1, 3),
        "runaway_f": np.array([a.f for a in runs]).reshape(-1, 3),
        "runaway_rho": np.array([a.rho for a in runs]),
        "runaway_host": np.array([a.host for a in runs], dtype=np.int64),
        "lattice_dims": np.array(
            [engine.lattice.nx, engine.lattice.ny, engine.lattice.nz]
        ),
        "lattice_a": np.array(engine.lattice.a),
    }
    dump_state(path, engine.state, extra)


def load_checkpoint(path, engine: MDEngine) -> None:
    """Restore a checkpoint into a compatible engine, in place."""
    state, extra = load_state(path)
    dims = extra["lattice_dims"]
    if tuple(dims) != (engine.lattice.nx, engine.lattice.ny, engine.lattice.nz):
        raise CheckpointError(
            f"lattice mismatch: checkpoint {tuple(dims)} vs engine "
            f"({engine.lattice.nx}, {engine.lattice.ny}, {engine.lattice.nz})"
        )
    if abs(float(extra["lattice_a"]) - engine.lattice.a) > 1e-12:
        raise CheckpointError("lattice constant mismatch")
    engine.state = state
    engine._step = int(extra["step"])
    engine.nblist.hosts.clear()
    for i in range(len(extra["runaway_ids"])):
        atom = RunawayAtom(
            id=int(extra["runaway_ids"][i]),
            x=extra["runaway_x"][i].copy(),
            v=extra["runaway_v"][i].copy(),
            host=int(extra["runaway_host"][i]),
            f=extra["runaway_f"][i].copy(),
            rho=float(extra["runaway_rho"][i]),
        )
        engine.nblist.hosts.setdefault(atom.host, []).append(atom)


# ----------------------------------------------------------------------
# Lightweight AKMC checkpoints (the recovery supervisor's restart unit)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KMCCheckpoint:
    """One resumable AKMC snapshot.

    Attributes
    ----------
    occupancy:
        The *global* site array (int8 ATOM/VACANCY codes).
    time:
        Simulated KMC clock (ps) — stored bit-exactly, so a resumed run
        accumulates the identical float sum as an uninterrupted one.
    cycle:
        Parallel engine: completed cycles.  Serial engine: equals
        ``events``.
    events:
        Global executed-event count at the snapshot.
    rng_state:
        JSON-encoded ``bit_generator.state`` of the serial engine's
        generator (``None`` for parallel runs, whose streams are pure
        functions of (seed, rank, cycle, sector) and need no state).
    """

    occupancy: np.ndarray
    time: float
    cycle: int
    events: int
    rng_state: str | None = None


def save_kmc_checkpoint(
    path,
    occupancy: np.ndarray,
    *,
    time: float,
    cycle: int = 0,
    events: int = 0,
    rng_state: str | None = None,
) -> None:
    """Atomically write a :class:`KMCCheckpoint` to ``path`` (.npz).

    The snapshot lands in a *uniquely named* sibling temp file, is
    fsynced, and is renamed over ``path`` only once durable: a rank
    crash (or fault injection, or power loss) during checkpointing
    leaves the previous checkpoint intact, and two concurrent
    checkpointers targeting one path cannot corrupt each other.
    """
    with atomic_write(path) as fh:
        np.savez_compressed(
            fh,
            format=np.array(KMC_FORMAT),
            occupancy=np.asarray(occupancy, dtype=np.int8),
            time=np.array(float(time)),
            cycle=np.array(int(cycle)),
            events=np.array(int(events)),
            rng_state=np.array(rng_state if rng_state is not None else ""),
        )


def load_kmc_checkpoint(path) -> KMCCheckpoint:
    """Read back a checkpoint written by :func:`save_kmc_checkpoint`."""
    with np.load(path, allow_pickle=False) as data:
        if "format" not in data.files or str(data["format"]) != KMC_FORMAT:
            raise CheckpointError(f"{path} is not a {KMC_FORMAT} file")
        rng_state = str(data["rng_state"])
        return KMCCheckpoint(
            occupancy=data["occupancy"].astype(np.int8).copy(),
            time=float(data["time"]),
            cycle=int(data["cycle"]),
            events=int(data["events"]),
            rng_state=rng_state or None,
        )


def rng_state_json(rng: np.random.Generator) -> str:
    """Serialize a NumPy generator's exact state for a checkpoint."""
    return json.dumps(rng.bit_generator.state)


def restore_rng_state(rng: np.random.Generator, state_json: str) -> None:
    """Load a state produced by :func:`rng_state_json` back into ``rng``."""
    try:
        rng.bit_generator.state = json.loads(state_json)
    except (ValueError, KeyError, TypeError) as exc:
        raise CheckpointError(f"invalid RNG state in checkpoint: {exc}") from exc
