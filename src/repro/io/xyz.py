"""Extended-XYZ trajectory output.

The simulation results of Figure 17 are rendered from vacancy point
clouds; these helpers write atom/vacancy configurations in the extended
XYZ dialect every materials-science visualizer (OVITO, VMD, ASE) reads.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np


def write_xyz(
    path,
    symbols,
    positions: np.ndarray,
    comment: str = "",
    lengths: np.ndarray | None = None,
    append: bool = False,
) -> None:
    """Write one frame: ``symbols`` (str or list) + ``(n, 3)`` positions.

    With ``lengths`` the comment line carries an extended-XYZ ``Lattice``
    field for the periodic box.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError(f"positions must be (n, 3), got {positions.shape}")
    n = len(positions)
    if isinstance(symbols, str):
        symbols = [symbols] * n
    if len(symbols) != n:
        raise ValueError(f"{len(symbols)} symbols for {n} positions")
    if lengths is not None:
        lx, ly, lz = np.asarray(lengths, dtype=float)
        lattice = f'Lattice="{lx} 0 0 0 {ly} 0 0 0 {lz}" '
    else:
        lattice = ""
    comment = comment.replace("\n", " ")
    lines = [str(n), f"{lattice}{comment}".strip()]
    for sym, (x, y, z) in zip(symbols, positions, strict=True):
        lines.append(f"{sym} {x:.8f} {y:.8f} {z:.8f}")
    mode = "a" if append else "w"
    with open(path, mode) as fh:
        fh.write("\n".join(lines) + "\n")


def read_xyz(path):
    """Read the first frame of an XYZ file: ``(symbols, positions)``."""
    text = Path(path).read_text().splitlines()
    if len(text) < 2:
        raise ValueError(f"{path} is not an XYZ file")
    n = int(text[0])
    if len(text) < 2 + n:
        raise ValueError(f"{path} truncated: expected {n} atom lines")
    symbols = []
    positions = np.empty((n, 3))
    for i, line in enumerate(text[2 : 2 + n]):
        parts = line.split()
        symbols.append(parts[0])
        positions[i] = [float(p) for p in parts[1:4]]
    return symbols, positions


def write_vacancy_xyz(path, lattice, vacancy_ranks, comment: str = "") -> None:
    """Dump a vacancy point cloud (the white points of Figure 17)."""
    ranks = np.asarray(vacancy_ranks, dtype=np.int64)
    write_xyz(
        path,
        "V",
        lattice.position_of(ranks) if len(ranks) else np.empty((0, 3)),
        comment=comment or f"{len(ranks)} vacancies",
        lengths=lattice.lengths,
    )
