"""Extended-XYZ trajectory output.

The simulation results of Figure 17 are rendered from vacancy point
clouds; these helpers write atom/vacancy configurations in the extended
XYZ dialect every materials-science visualizer (OVITO, VMD, ASE) reads.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np


def write_xyz(
    path,
    symbols,
    positions: np.ndarray,
    comment: str = "",
    lengths: np.ndarray | None = None,
    append: bool = False,
) -> None:
    """Write one frame: ``symbols`` (str or list) + ``(n, 3)`` positions.

    With ``lengths`` the comment line carries an extended-XYZ ``Lattice``
    field for the periodic box.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError(f"positions must be (n, 3), got {positions.shape}")
    n = len(positions)
    if isinstance(symbols, str):
        symbols = [symbols] * n
    if len(symbols) != n:
        raise ValueError(f"{len(symbols)} symbols for {n} positions")
    if lengths is not None:
        lx, ly, lz = np.asarray(lengths, dtype=float)
        lattice = f'Lattice="{lx} 0 0 0 {ly} 0 0 0 {lz}" '
    else:
        lattice = ""
    comment = comment.replace("\n", " ")
    lines = [str(n), f"{lattice}{comment}".strip()]
    for sym, (x, y, z) in zip(symbols, positions, strict=True):
        lines.append(f"{sym} {x:.8f} {y:.8f} {z:.8f}")
    mode = "a" if append else "w"
    with open(path, mode) as fh:
        fh.write("\n".join(lines) + "\n")


def read_xyz(path):
    """Read the first frame of an XYZ file: ``(symbols, positions)``.

    Malformed input (a non-numeric count, a blank or short atom line
    inside the frame, non-numeric coordinates) raises :class:`ValueError`
    naming the file and 1-based line number.  Trailing blank lines after
    the last atom are tolerated.
    """
    path = Path(path)
    text = path.read_text().splitlines()
    if len(text) < 2:
        raise ValueError(f"{path} is not an XYZ file")
    try:
        n = int(text[0])
    except ValueError as exc:
        raise ValueError(
            f"{path}:1: expected an atom count, got {text[0]!r}"
        ) from exc
    if len(text) < 2 + n:
        raise ValueError(f"{path} truncated: expected {n} atom lines")
    symbols = []
    positions = np.empty((n, 3))
    for i, line in enumerate(text[2 : 2 + n]):
        lineno = i + 3
        parts = line.split()
        if len(parts) < 4:
            raise ValueError(
                f"{path}:{lineno}: malformed atom line {line!r} "
                "(expected 'symbol x y z')"
            )
        symbols.append(parts[0])
        try:
            positions[i] = [float(p) for p in parts[1:4]]
        except ValueError as exc:
            raise ValueError(
                f"{path}:{lineno}: non-numeric coordinate in {line!r}"
            ) from exc
    return symbols, positions


def write_vacancy_xyz(path, lattice, vacancy_ranks, comment: str = "") -> None:
    """Dump a vacancy point cloud (the white points of Figure 17)."""
    ranks = np.asarray(vacancy_ranks, dtype=np.int64)
    write_xyz(
        path,
        "V",
        lattice.position_of(ranks) if len(ranks) else np.empty((0, 3)),
        comment=comment or f"{len(ranks)} vacancies",
        lengths=lattice.lengths,
    )
