"""Structured NumPy dumps of simulation state.

A dump is a single ``.npz`` with every array of an
:class:`~repro.md.state.AtomState` (or a KMC occupancy) plus metadata —
the low-level building block :mod:`repro.io.checkpoint` composes.
"""

from __future__ import annotations

import numpy as np

from repro.io.atomic import atomic_write
from repro.md.state import AtomState

#: Format marker stored in every dump.
FORMAT = "repro-state-v1"


def dump_state(path, state: AtomState, extra: dict | None = None) -> None:
    """Atomically write all state arrays (and extras) to ``path``.

    The dump goes through :func:`repro.io.atomic.atomic_write` (unique
    temp file, fsync, rename), so a crash mid-write — including a
    fault-injected kill while checkpointing — can never destroy a
    previous dump at the same path.
    """
    payload = {
        "format": np.array(FORMAT),
        "ids": state.ids,
        "x": state.x,
        "v": state.v,
        "f": state.f,
        "rho": state.rho,
        "site_pos": state.site_pos,
        "mass": np.array(state.mass),
    }
    for key, value in (extra or {}).items():
        if key in payload:
            raise ValueError(f"extra key {key!r} collides with a state array")
        payload[key] = np.asarray(value)
    with atomic_write(path) as fh:
        np.savez_compressed(fh, **payload)


def load_state(path) -> tuple[AtomState, dict]:
    """Read a dump back; returns ``(state, extra_arrays)``."""
    with np.load(path, allow_pickle=False) as data:
        if str(data["format"]) != FORMAT:
            raise ValueError(
                f"{path} is not a {FORMAT} dump (found {data['format']!r})"
            )
        state = AtomState(
            ids=data["ids"],
            x=data["x"],
            site_pos=data["site_pos"],
            mass=float(data["mass"]),
        )
        state.v = data["v"].copy()
        state.f = data["f"].copy()
        state.rho = data["rho"].copy()
        known = {"format", "ids", "x", "v", "f", "rho", "site_pos", "mass"}
        extra = {k: data[k].copy() for k in data.files if k not in known}
    return state, extra
