"""Streaming chunked trajectory store: crash-safe, append-only, out-of-core.

A coupled run at paper scale (3.2e10 atoms, 8.6 wall-clock hours) can
never hold its occupancy trajectory in memory, let alone write it as one
monolithic ``.npz`` at the end.  This module is the durable-artifact
substrate ROADMAP's "streaming trajectory store" item calls for:

* **Append-only shards.**  A store is a directory holding one binary
  shard per writing rank (``shard-00000.bin`` ...).  Frames are grouped
  into fixed-size *chunks*; each chunk starts with a full **keyframe**
  (the raw int8 occupancy) followed by **delta** frames (row indices +
  new codes vs the previous frame), and the whole chunk is compressed
  (zlib by default, zstd when available, or none).  Deltas make a
  quiescent lattice nearly free; the periodic keyframe bounds the work
  of random access.
* **Index sidecar.**  Each shard carries a JSON sidecar
  (``shard-00000.json``) mapping chunks to byte ranges, frame numbers
  and timestamps, plus the lattice metadata and a CRC32 per chunk.  The
  sidecar is rewritten through :func:`repro.io.atomic.atomic_write`
  *after* the shard bytes are flushed and fsynced, so after any crash
  the index describes only complete, durable chunks — trailing torn
  bytes in the shard are simply unreferenced and are truncated away on
  the next append.
* **Atomic finalize.**  :func:`finalize_store` (or
  ``TrajectoryWriter.close(final=True)``) marks the sidecars final in
  one atomic replace; readers accept non-final stores, so a crashed
  run's store reopens cleanly at its last durable fence.
* **Out-of-core reading.**  :class:`TrajectoryReader` iterates frames
  or random-accesses them by index or time while holding at most one
  decoded chunk per shard, and stitches multi-shard (per-rank
  site-subset) stores back into global frames.

Writes are instrumented as ``io.trajectory.*`` observe phases and
counters, so trajectory I/O is a measured phase exactly like the
paper's output stage.

Sharding: a shard may cover the full lattice (``sites=None``, the
gather-path wiring where rank 0 writes global frames) or an arbitrary
site subset (``sites=owned``), in which case the reader requires the
shards to tile the lattice and stitches them per frame.
"""

from __future__ import annotations

import json
import os
import struct
import warnings
import zlib
from bisect import bisect_right
from pathlib import Path

import numpy as np

from repro import observe as obs
from repro.io.atomic import atomic_write_bytes
from repro.lattice.bcc import BCCLattice

#: Format marker stored in every shard index sidecar.
FORMAT = "repro-trajectory-store-v1"

#: Default frames per chunk (each chunk opens with a keyframe).
DEFAULT_CHUNK_FRAMES = 16

_KEYFRAME = b"K"
_DELTA = b"D"


class StoreError(RuntimeError):
    """A trajectory store is malformed, corrupt, or used inconsistently."""


class TornTailWarning(UserWarning):
    """A shard held torn bytes beyond its last indexed chunk.

    Raised (as a warning, recovery still proceeds) when a reopened
    writer truncates unindexed trailing bytes a crash left behind.  A
    deliberate ``UserWarning`` subclass: the numeric-safety CI leg
    promotes ``RuntimeWarning`` to errors, and recovering from a torn
    tail is legitimate, observable behaviour — not a numeric fault.
    """


# ----------------------------------------------------------------------
# Compression codecs (zstd is optional; the container may not ship it)
# ----------------------------------------------------------------------
def _get_codec(name: str):
    """Return ``(compress, decompress)`` callables for a codec name."""
    if name == "zlib":
        return (lambda b: zlib.compress(b, 6), zlib.decompress)
    if name == "none":
        return (lambda b: b, lambda b: b)
    if name == "zstd":
        try:
            import zstandard
        except ImportError as exc:
            raise StoreError(
                "compression='zstd' needs the optional zstandard package; "
                "use 'zlib' (default) or 'none'"
            ) from exc
        cctx = zstandard.ZstdCompressor()
        dctx = zstandard.ZstdDecompressor()
        return (cctx.compress, dctx.decompress)
    raise StoreError(
        f"unknown compression {name!r}; choose zlib, zstd, or none"
    )


# ----------------------------------------------------------------------
# Frame record encoding (inside a chunk, before compression)
# ----------------------------------------------------------------------
def _encode_keyframe(occ: np.ndarray) -> bytes:
    return _KEYFRAME + occ.tobytes()


def _encode_delta(prev: np.ndarray, occ: np.ndarray) -> bytes:
    rows = np.flatnonzero(occ != prev)
    return (
        _DELTA
        + struct.pack("<I", len(rows))
        + rows.astype("<i4").tobytes()
        + occ[rows].tobytes()
    )


def _decode_frames(blob: bytes, nsites: int, nframes: int) -> list[np.ndarray]:
    """Decode one decompressed chunk blob into its occupancy frames."""
    frames: list[np.ndarray] = []
    pos = 0
    prev: np.ndarray | None = None
    for k in range(nframes):
        kind = blob[pos : pos + 1]
        pos += 1
        if kind == _KEYFRAME:
            occ = np.frombuffer(blob, dtype=np.int8, count=nsites, offset=pos)
            pos += nsites
            occ = occ.copy()
        elif kind == _DELTA:
            if prev is None:
                raise StoreError(f"chunk frame {k} is a delta with no keyframe")
            (n,) = struct.unpack_from("<I", blob, pos)
            pos += 4
            rows = np.frombuffer(blob, dtype="<i4", count=n, offset=pos)
            pos += 4 * n
            vals = np.frombuffer(blob, dtype=np.int8, count=n, offset=pos)
            pos += n
            occ = prev.copy()
            occ[rows] = vals
        else:
            raise StoreError(f"bad frame marker {kind!r} in chunk")
        frames.append(occ)
        prev = occ
    if pos != len(blob):
        raise StoreError(
            f"chunk has {len(blob) - pos} trailing bytes after {nframes} frames"
        )
    return frames


def _shard_name(rank: int) -> str:
    return f"shard-{rank:05d}"


class TrajectoryWriter:
    """Incremental, crash-safe writer of one shard of a trajectory store.

    Parameters
    ----------
    path:
        Store directory (created if missing).
    lattice:
        The :class:`~repro.lattice.bcc.BCCLattice` the frames cover.
        Required when creating a shard; optional (validated) when
        reopening one.
    rank:
        Shard number.  Single-writer stores use the default 0.
    sites:
        Global site ranks this shard covers, or ``None`` for the full
        lattice.  Per-rank subset shards are stitched by the reader.
    chunk_frames:
        Frames per chunk; every chunk opens with a keyframe, so this is
        also the worst-case delta chain a random access decodes.
    compression:
        ``"zlib"`` (default), ``"zstd"`` (if installed), or ``"none"``.
    mode:
        ``"a"`` (default) appends to an existing shard — reopening after
        a crash resumes at the last indexed chunk and truncates any torn
        tail bytes.  ``"w"`` starts the shard over.
    sync:
        Fsync shard bytes before each index update (the durability
        contract; tests may disable for speed).

    Memory stays bounded by ``chunk_frames`` encoded records plus one
    previous-frame copy — peak RSS does not grow with frame count.
    """

    def __init__(
        self,
        path,
        lattice: BCCLattice | None = None,
        *,
        rank: int = 0,
        sites: np.ndarray | None = None,
        chunk_frames: int = DEFAULT_CHUNK_FRAMES,
        compression: str = "zlib",
        mode: str = "a",
        sync: bool = True,
    ) -> None:
        if chunk_frames < 1:
            raise ValueError(f"chunk_frames must be >= 1, got {chunk_frames}")
        if mode not in ("a", "w"):
            raise ValueError(f"mode must be 'a' or 'w', got {mode!r}")
        self.path = Path(path)
        if self.path.exists() and not self.path.is_dir():
            raise StoreError(f"{self.path} exists and is not a store directory")
        self.path.mkdir(parents=True, exist_ok=True)
        self.rank = int(rank)
        self.sync = sync
        self._bin_path = self.path / (_shard_name(self.rank) + ".bin")
        self._idx_path = self.path / (_shard_name(self.rank) + ".json")
        self._sites = (
            None if sites is None else np.asarray(sites, dtype=np.int64)
        )
        self._pending: list[bytes] = []
        self._pending_times: list[float] = []
        self._prev: np.ndarray | None = None
        self._closed = False

        if mode == "a" and self._idx_path.exists():
            self._resume(lattice)
        else:
            if lattice is None:
                raise ValueError("creating a shard requires a lattice")
            self._init_fresh(lattice, chunk_frames, compression)
        self._compress, _ = _get_codec(self.compression)

    # -- construction ---------------------------------------------------
    def _init_fresh(self, lattice, chunk_frames, compression) -> None:
        self.lattice = lattice
        self.chunk_frames = int(chunk_frames)
        self.compression = compression
        _get_codec(compression)  # validate (and fail early on zstd)
        self.nsites = (
            lattice.nsites if self._sites is None else len(self._sites)
        )
        if self._sites is not None and (
            self._sites.min() < 0 or self._sites.max() >= lattice.nsites
        ):
            raise StoreError("shard sites out of lattice range")
        self._chunks: list[dict] = []
        self._nframes = 0
        self._last_time: float | None = None
        sites_bytes = (
            b"" if self._sites is None else self._sites.astype("<i8").tobytes()
        )
        self._sites_length = len(sites_bytes)
        # Unbuffered: chunk writes are single large write() calls, and an
        # abandoned handle (a crashed rank's writer, reclaimed by GC
        # after the store was rewound by the supervisor) must never
        # flush stale buffered bytes over the resumed writer's data.
        self._fh = open(self._bin_path, "wb", buffering=0)
        if sites_bytes:
            self._fh.write(sites_bytes)
        self._data_end = self._sites_length
        self._write_index()

    def _resume(self, lattice) -> None:
        meta = _load_shard_index(self._idx_path)
        dims = meta["dims"]
        self.lattice = BCCLattice(*(int(d) for d in dims), a=float(meta["a"]))
        if lattice is not None and (
            (lattice.nx, lattice.ny, lattice.nz) != tuple(dims)
            or abs(lattice.a - float(meta["a"])) > 1e-12
        ):
            raise StoreError(
                f"store at {self.path} covers lattice {tuple(dims)}, "
                f"writer given ({lattice.nx}, {lattice.ny}, {lattice.nz})"
            )
        self.chunk_frames = int(meta["chunk_frames"])
        self.compression = meta["compression"]
        self.nsites = int(meta["nsites"])
        self._sites_length = int(meta["sites_length"])
        if self._sites_length:
            self._sites = np.fromfile(
                self._bin_path, dtype="<i8", count=self.nsites
            ).astype(np.int64)
        else:
            self._sites = None
        self._chunks = list(meta["chunks"])
        self._nframes = int(meta["nframes"])
        self._last_time = (
            float(self._chunks[-1]["times"][-1]) if self._chunks else None
        )
        end = self._sites_length
        if self._chunks:
            end = int(self._chunks[-1]["offset"]) + int(self._chunks[-1]["length"])
        # Drop any torn tail a crash left beyond the last indexed chunk —
        # but never silently: recovered-from corruption must be
        # observable (the REP005 discipline applied to data, not code).
        size = os.path.getsize(self._bin_path)
        if size > end:
            obs.add("io.trajectory.torn_tail")
            warnings.warn(
                f"trajectory shard {self._bin_path.name} in {self.path}: "
                f"dropping {size - end} unindexed tail byte(s) left by an "
                "interrupted append",
                TornTailWarning,
                stacklevel=3,
            )
        self._fh = open(self._bin_path, "r+b", buffering=0)
        self._fh.truncate(end)
        self._fh.seek(end)
        self._data_end = end
        # A reopened writer starts a fresh chunk (keyframe), so it never
        # needs to decode the previous frame to continue the delta chain.

    # -- properties -----------------------------------------------------
    @property
    def nframes(self) -> int:
        """Frames appended so far (committed + buffered)."""
        return self._nframes + len(self._pending)

    @property
    def last_time(self) -> float | None:
        """Timestamp of the newest frame (``None`` when empty)."""
        if self._pending_times:
            return self._pending_times[-1]
        return self._last_time

    # -- writing --------------------------------------------------------
    def append(self, time: float, occupancy: np.ndarray) -> None:
        """Buffer one frame; a full chunk is flushed to disk durably.

        ``occupancy`` covers this shard's sites (the full lattice for
        unsharded stores).  Times must be non-decreasing.
        """
        if self._closed:
            raise StoreError("writer is closed")
        occ = np.asarray(occupancy, dtype=np.int8)
        if len(occ) != self.nsites:
            raise ValueError(
                f"frame has {len(occ)} sites, shard covers {self.nsites}"
            )
        time = float(time)
        last = self.last_time
        if last is not None and time < last:
            raise ValueError(f"time must be non-decreasing: {time} < {last}")
        if not self._pending:
            rec = _encode_keyframe(occ)
        else:
            rec = _encode_delta(self._prev, occ)
        self._prev = occ.copy()
        self._pending.append(rec)
        self._pending_times.append(time)
        obs.add("io.trajectory.frames")
        if len(self._pending) >= self.chunk_frames:
            self._commit_chunk()

    def _commit_chunk(self) -> None:
        """Compress the buffered frames, append them, publish the index."""
        if not self._pending:
            return
        with obs.phase("io.trajectory.write_chunk"):
            blob = b"".join(self._pending)
            comp = self._compress(blob)
            self._fh.seek(self._data_end)
            self._fh.write(comp)
            self._fh.flush()
            if self.sync:
                os.fsync(self._fh.fileno())
            self._chunks.append(
                {
                    "offset": self._data_end,
                    "length": len(comp),
                    "raw_length": len(blob),
                    "frame0": self._nframes,
                    "nframes": len(self._pending),
                    "times": list(self._pending_times),
                    "crc": zlib.crc32(comp),
                }
            )
            self._data_end += len(comp)
            self._nframes += len(self._pending)
            self._last_time = self._pending_times[-1]
            self._pending = []
            self._pending_times = []
            obs.add("io.trajectory.chunks")
            obs.add("io.trajectory.bytes_written", len(comp))
            self._write_index()

    def _write_index(self, final: bool = False) -> None:
        meta = {
            "format": FORMAT,
            "dims": [self.lattice.nx, self.lattice.ny, self.lattice.nz],
            "a": self.lattice.a,
            "rank": self.rank,
            "nsites": self.nsites,
            "sites_length": self._sites_length,
            "compression": self.compression,
            "chunk_frames": self.chunk_frames,
            "nframes": self._nframes,
            "final": bool(final),
            "chunks": self._chunks,
        }
        with obs.phase("io.trajectory.write_index"):
            atomic_write_bytes(
                self._idx_path,
                json.dumps(meta).encode("utf-8"),
                sync=self.sync,
            )

    def flush(self) -> None:
        """Force the partial chunk (if any) out to durable storage."""
        self._commit_chunk()

    def rewind(self, time: float) -> None:
        """Drop every frame newer than ``time`` (strictly greater).

        The recovery path: after restoring a checkpoint at clock ``t``,
        frames the crashed attempt wrote beyond ``t`` are discarded so
        the resumed attempt re-records them bit-identically.  The cut
        may fall mid-chunk; the kept prefix of that chunk is re-buffered
        and re-committed on the next flush.
        """
        if self._closed:
            raise StoreError("writer is closed")
        # Decode the buffered tail first: records are a keyframe + delta
        # chain, so trimming it requires the actual frames to rebuild
        # the chain (and ``_prev``) from the kept prefix.
        kept_frames: list[np.ndarray] = []
        kept_times: list[float] = []
        if self._pending:
            frames = _decode_frames(
                b"".join(self._pending), self.nsites, len(self._pending)
            )
            for t, f in zip(self._pending_times, frames, strict=True):
                if t > time:
                    break
                kept_times.append(t)
                kept_frames.append(f)
        keep = len(self._chunks)
        while keep and self._chunks[keep - 1]["times"][0] > time:
            keep -= 1
        if keep < len(self._chunks):
            # Committed chunks are being dropped, so every pending frame
            # (recorded after them) is also beyond the cut.
            kept_frames = []
            kept_times = []
        if keep and self._chunks[keep - 1]["times"][-1] > time:
            # The cut lands inside chunk ``keep - 1``: decode it and
            # re-buffer the frame prefix at or before the cut.
            chunk = self._chunks[keep - 1]
            frames = _read_chunk(
                self._bin_path, chunk, self.nsites, self.compression
            )
            kept_frames = []
            kept_times = []
            for t, f in zip(chunk["times"], frames, strict=True):
                if t > time:
                    break
                kept_times.append(float(t))
                kept_frames.append(f)
            keep -= 1
        self._chunks = self._chunks[:keep]
        self._nframes = (
            int(self._chunks[-1]["frame0"] + self._chunks[-1]["nframes"])
            if self._chunks
            else 0
        )
        self._last_time = (
            float(self._chunks[-1]["times"][-1]) if self._chunks else None
        )
        end = self._sites_length
        if self._chunks:
            end = int(self._chunks[-1]["offset"]) + int(self._chunks[-1]["length"])
        self._fh.truncate(end)
        self._fh.seek(end)
        self._data_end = end
        self._pending = []
        self._pending_times = []
        for t, f in zip(kept_times, kept_frames, strict=True):
            rec = (
                _encode_keyframe(f)
                if not self._pending
                else _encode_delta(self._prev, f)
            )
            self._prev = f.copy()
            self._pending.append(rec)
            self._pending_times.append(t)
        self._write_index()

    def close(self, final: bool = False) -> None:
        """Flush and close; ``final=True`` marks the shard finalized."""
        if self._closed:
            return
        self._commit_chunk()
        self._write_index(final=final)
        self._fh.close()
        self._closed = True

    def finalize(self) -> None:
        """Flush, mark final, close — the atomic end-of-run commit."""
        self.close(final=True)

    def __enter__(self) -> "TrajectoryWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # A clean exit finalizes; an exception leaves the store
        # resumable (indexed chunks only) without marking it final.
        if exc_type is None:
            self.finalize()
        else:
            self.close(final=False)


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def _load_shard_index(idx_path: Path) -> dict:
    try:
        meta = json.loads(Path(idx_path).read_text())
    except (OSError, ValueError) as exc:
        raise StoreError(f"cannot read shard index {idx_path}: {exc}") from exc
    if meta.get("format") != FORMAT:
        raise StoreError(f"{idx_path} is not a {FORMAT} sidecar")
    return meta


def _read_chunk(bin_path, chunk: dict, nsites: int, compression: str):
    """Read, verify, decompress and decode one chunk from a shard file."""
    _, decompress = _get_codec(compression)
    with obs.phase("io.trajectory.read_chunk"):
        with open(bin_path, "rb") as fh:
            fh.seek(int(chunk["offset"]))
            comp = fh.read(int(chunk["length"]))
        if len(comp) != int(chunk["length"]):
            raise StoreError(
                f"{bin_path}: chunk at offset {chunk['offset']} truncated"
            )
        if zlib.crc32(comp) != int(chunk["crc"]):
            raise StoreError(
                f"{bin_path}: chunk at offset {chunk['offset']} fails CRC"
            )
        obs.add("io.trajectory.chunks_read")
        obs.add("io.trajectory.bytes_read", len(comp))
        return _decode_frames(
            decompress(comp), nsites, int(chunk["nframes"])
        )


class _Shard:
    """One shard's index, site map, and single-chunk decode cache."""

    def __init__(self, store: Path, meta: dict) -> None:
        self.meta = meta
        self.rank = int(meta["rank"])
        self.nsites = int(meta["nsites"])
        self.compression = meta["compression"]
        self.bin_path = store / (_shard_name(self.rank) + ".bin")
        self.chunks = meta["chunks"]
        self.nframes = int(meta["nframes"])
        self.times = np.array(
            [t for c in self.chunks for t in c["times"]], dtype=float
        )
        self.frame0s = [int(c["frame0"]) for c in self.chunks]
        if int(meta["sites_length"]):
            self.sites = np.fromfile(
                self.bin_path, dtype="<i8", count=self.nsites
            ).astype(np.int64)
        else:
            self.sites = None
        self._cache_idx: int | None = None
        self._cache_frames: list[np.ndarray] | None = None

    def frame(self, i: int) -> np.ndarray:
        """This shard's occupancy slice for global frame ``i``."""
        ci = bisect_right(self.frame0s, i) - 1
        if ci < 0 or i >= self.nframes:
            raise IndexError(f"frame {i} out of range (shard has {self.nframes})")
        if ci != self._cache_idx:
            self._cache_frames = _read_chunk(
                self.bin_path, self.chunks[ci], self.nsites, self.compression
            )
            self._cache_idx = ci
        return self._cache_frames[i - self.frame0s[ci]]


class TrajectoryReader:
    """Out-of-core reader over a (possibly sharded) trajectory store.

    Holds at most one decoded chunk per shard; frames are materialized
    on demand, so iterating a 10^6-frame store costs chunk-sized memory,
    not trajectory-sized.  Subset shards (per-rank ``sites``) are
    stitched into full-lattice frames; they must tile the lattice.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        if not self.path.is_dir():
            raise StoreError(f"{self.path} is not a trajectory store directory")
        idx_paths = sorted(self.path.glob("shard-*.json"))
        if not idx_paths:
            raise StoreError(f"{self.path} holds no shard index sidecars")
        self.shards = [
            _Shard(self.path, _load_shard_index(p)) for p in idx_paths
        ]
        ref = self.shards[0].meta
        for s in self.shards[1:]:
            if (
                s.meta["dims"] != ref["dims"]
                or float(s.meta["a"]) != float(ref["a"])
            ):
                raise StoreError("shards disagree on the lattice")
        self.lattice = BCCLattice(
            *(int(d) for d in ref["dims"]), a=float(ref["a"])
        )
        #: Frames present in every shard (an unclean shutdown may leave
        #: shards a fence apart; the common prefix is the usable store).
        self.nframes = min(s.nframes for s in self.shards)
        self.times = self.shards[0].times[: self.nframes].copy()
        for s in self.shards[1:]:
            if not np.array_equal(s.times[: self.nframes], self.times):
                raise StoreError("shards disagree on frame timestamps")
        self.final = all(bool(s.meta["final"]) for s in self.shards)
        covered = np.zeros(self.lattice.nsites, dtype=bool)
        for s in self.shards:
            if s.sites is None:
                covered[:] = True
            else:
                covered[s.sites] = True
        if not covered.all():
            raise StoreError(
                "shards do not tile the lattice: "
                f"{int((~covered).sum())} sites uncovered"
            )

    def __len__(self) -> int:
        return self.nframes

    def _resolve(self, frame: int) -> int:
        idx = range(self.nframes)[frame]
        return int(idx)

    def frame(self, frame: int) -> np.ndarray:
        """One stitched global occupancy frame (negative indices OK)."""
        i = self._resolve(frame)
        obs.add("io.trajectory.frames_read")
        if len(self.shards) == 1 and self.shards[0].sites is None:
            return self.shards[0].frame(i).copy()
        occ = np.empty(self.lattice.nsites, dtype=np.int8)
        for s in self.shards:
            part = s.frame(i)
            if s.sites is None:
                occ[:] = part
            else:
                occ[s.sites] = part
        return occ

    def time_of(self, frame: int) -> float:
        """Timestamp of one frame."""
        return float(self.times[self._resolve(frame)])

    def frame_index_at(self, time: float) -> int:
        """Index of the newest frame with timestamp <= ``time``."""
        if self.nframes == 0 or time < self.times[0]:
            raise ValueError(f"no frame at or before t={time}")
        return int(np.searchsorted(self.times, time, side="right") - 1)

    def frame_at_time(self, time: float) -> np.ndarray:
        """The newest frame at or before ``time`` (random access)."""
        return self.frame(self.frame_index_at(time))

    def vacancy_ranks(self, frame: int) -> np.ndarray:
        """Vacancy site ranks of one frame (code 0 = vacancy)."""
        return np.flatnonzero(self.frame(frame) == 0)

    def iter_frames(self, start: int = 0, stop: int | None = None):
        """Yield ``(time, occupancy)`` without loading the frame stack."""
        stop = self.nframes if stop is None else min(stop, self.nframes)
        for i in range(start, stop):
            yield float(self.times[i]), self.frame(i)

    def __iter__(self):
        return self.iter_frames()


# ----------------------------------------------------------------------
# Store-level helpers (the supervisor's and driver's entry points)
# ----------------------------------------------------------------------
def is_store(path) -> bool:
    """True when ``path`` is a trajectory store directory."""
    p = Path(path)
    return p.is_dir() and any(p.glob("shard-*.json"))


def rewind_store(path, time: float) -> None:
    """Drop frames newer than ``time`` from every shard (recovery path)."""
    p = Path(path)
    for idx_path in sorted(p.glob("shard-*.json")):
        meta = _load_shard_index(idx_path)
        writer = TrajectoryWriter(p, rank=int(meta["rank"]))
        try:
            writer.rewind(time)
            writer.flush()
        finally:
            writer.close(final=False)


def finalize_store(path) -> None:
    """Atomically mark every shard of a store final (end-of-run commit)."""
    p = Path(path)
    saw = False
    for idx_path in sorted(p.glob("shard-*.json")):
        saw = True
        meta = _load_shard_index(idx_path)
        writer = TrajectoryWriter(p, rank=int(meta["rank"]))
        writer.finalize()
    if not saw:
        raise StoreError(f"{p} holds no shard index sidecars")
