"""I/O: trajectory dumps, structured state dumps, checkpoints."""

from repro.io.xyz import write_xyz, read_xyz, write_vacancy_xyz
from repro.io.dump import dump_state, load_state
from repro.io.checkpoint import save_checkpoint, load_checkpoint, CheckpointError
from repro.io.kmc_trajectory import KMCTrajectory

__all__ = [
    "CheckpointError",
    "KMCTrajectory",
    "dump_state",
    "load_checkpoint",
    "load_state",
    "read_xyz",
    "save_checkpoint",
    "write_vacancy_xyz",
    "write_xyz",
]
