"""I/O: trajectory dumps, structured state dumps, checkpoints."""

from repro.io.xyz import write_xyz, read_xyz, write_vacancy_xyz
from repro.io.dump import dump_state, load_state
from repro.io.checkpoint import save_checkpoint, load_checkpoint, CheckpointError
from repro.io.kmc_trajectory import KMCTrajectory
from repro.io.atomic import atomic_write, atomic_write_bytes
from repro.io.store import (
    StoreError,
    TrajectoryReader,
    TrajectoryWriter,
    finalize_store,
    is_store,
    rewind_store,
)

__all__ = [
    "CheckpointError",
    "KMCTrajectory",
    "StoreError",
    "TrajectoryReader",
    "TrajectoryWriter",
    "atomic_write",
    "atomic_write_bytes",
    "dump_state",
    "finalize_store",
    "is_store",
    "load_checkpoint",
    "load_state",
    "read_xyz",
    "rewind_store",
    "save_checkpoint",
    "write_vacancy_xyz",
    "write_xyz",
]
