"""KMC trajectory recording: occupancy frames with timestamps.

A coupled run's scientific output is the evolution of the site array;
:class:`KMCTrajectory` accumulates (time, occupancy) frames, persists
them as one compressed ``.npz``, and exports any frame's vacancy cloud as
extended XYZ for visualization (the raw material of Figure 17's panels).

.. note::
   The monolithic in-memory ``.npz`` format is superseded by the
   streaming chunked store in :mod:`repro.io.store`, which writes
   frames incrementally and reads them out-of-core.
   :meth:`KMCTrajectory.load` transparently accepts a store directory,
   so existing analysis code keeps working; new code should use
   :class:`repro.io.store.TrajectoryReader` directly and
   :class:`KMCTrajectory` is kept as a compatibility shim for
   in-memory workflows.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.io.xyz import write_vacancy_xyz
from repro.lattice.bcc import BCCLattice

#: Format marker stored in every trajectory file.
FORMAT = "repro-kmc-trajectory-v1"


class KMCTrajectory:
    """An in-memory sequence of timestamped occupancy frames."""

    def __init__(self, lattice: BCCLattice) -> None:
        self.lattice = lattice
        self.times: list[float] = []
        self.frames: list[np.ndarray] = []

    def record(self, time: float, occupancy: np.ndarray) -> None:
        """Append one frame (copied)."""
        occupancy = np.asarray(occupancy, dtype=np.int8)
        if len(occupancy) != self.lattice.nsites:
            raise ValueError(
                f"frame has {len(occupancy)} sites, lattice has "
                f"{self.lattice.nsites}"
            )
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time must be non-decreasing: {time} < {self.times[-1]}"
            )
        self.times.append(float(time))
        self.frames.append(occupancy.copy())

    def __len__(self) -> int:
        return len(self.frames)

    def vacancy_ranks(self, frame: int) -> np.ndarray:
        """Vacancy site ranks of one frame."""
        return np.flatnonzero(self.frames[frame] == 0)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write all frames to a compressed ``.npz``."""
        if not self.frames:
            raise ValueError("trajectory has no frames")
        np.savez_compressed(
            path,
            format=np.array(FORMAT),
            dims=np.array(
                [self.lattice.nx, self.lattice.ny, self.lattice.nz]
            ),
            a=np.array(self.lattice.a),
            times=np.array(self.times),
            frames=np.stack(self.frames),
        )

    @classmethod
    def load(cls, path) -> "KMCTrajectory":
        """Read a trajectory back (lattice reconstructed from metadata).

        Accepts either the legacy monolithic ``.npz`` or a chunked store
        directory written by :class:`repro.io.store.TrajectoryWriter`;
        a store is materialized frame by frame into memory.  Code that
        must stay out-of-core should open the store with
        :class:`repro.io.store.TrajectoryReader` instead.
        """
        if Path(path).is_dir():
            from repro.io.store import TrajectoryReader

            reader = TrajectoryReader(path)
            traj = cls(reader.lattice)
            for t, frame in reader.iter_frames():
                traj.record(t, frame)
            return traj
        with np.load(path, allow_pickle=False) as data:
            if str(data["format"]) != FORMAT:
                raise ValueError(f"{path} is not a {FORMAT} file")
            nx, ny, nz = (int(v) for v in data["dims"])
            traj = cls(BCCLattice(nx, ny, nz, a=float(data["a"])))
            for t, frame in zip(data["times"], data["frames"], strict=True):
                traj.record(float(t), frame)
        return traj

    def export_vacancy_xyz(self, path, frame: int = -1) -> None:
        """Dump one frame's vacancy cloud as extended XYZ."""
        if not self.frames:
            raise ValueError("trajectory has no frames")
        idx = range(len(self.frames))[frame]
        write_vacancy_xyz(
            path,
            self.lattice,
            self.vacancy_ranks(idx),
            comment=f"frame {idx}, t = {self.times[idx]:.6g} ps",
        )
