"""Analytic iron-like EAM parameterization and its tabulated form.

The paper uses a literature Fe EAM potential (Daw & Baskes form).  We are
reproducing *systems behaviour*, not materials-science numbers, so we
substitute a smooth analytic parameterization with the same structure —
Morse-like pair repulsion/attraction, exponentially decaying electron
density, square-root embedding — and tabulate it into the paper's 5000-knot
interpolation tables.  Every downstream code path (MD forces, KMC migration
energies, the Sunway kernel's table transfers) sees only the tables, so the
substitution preserves all the behaviour under study.  See DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

import numpy as np

from repro.constants import FE_LATTICE_CONSTANT
from repro.potential.compact import CompactTable
from repro.potential.eam import EAMPotential, TableSet
from repro.potential.spline import SplineTable


@dataclass(frozen=True)
class FeParameters:
    """Parameters of the analytic iron-like EAM model.

    The default values are *fitted* (differential evolution over the BCC
    cold curve) so that the perfect BCC crystal at the paper's lattice
    constant a = 2.855 A is the exact energy minimum with a cohesive
    energy of -4.30 eV/atom (the experimental Fe value) and a steep
    compression penalty — i.e. the lattice is mechanically stable at the
    600 K simulation temperature, which the physics stages rely on.

    Attributes
    ----------
    d_morse:
        Pair-potential well depth (eV).
    alpha:
        Morse stiffness (1/A).
    r0:
        Pair-potential minimum position (A).
    beta:
        Electron-density decay rate (dimensionless, in units of ``r/r0``).
    f0:
        Electron-density scale at ``r = r0``.
    a_embed:
        Embedding strength: ``F(rho) = -a_embed * sqrt(rho)`` (eV).
    cutoff:
        Interaction cutoff (A).
    switch_start:
        Start of the smooth truncation window (A).
    """

    d_morse: float = 0.49312512
    alpha: float = 2.31774086
    r0: float = 2.61106684
    beta: float = 7.2309005
    f0: float = 1.0
    a_embed: float = 0.28057156
    cutoff: float = 5.6
    switch_start: float = 5.0

    def switch(self, r: np.ndarray) -> np.ndarray:
        """Cosine smoothing window taking interactions to zero at cutoff."""
        r = np.asarray(r, dtype=float)
        t = np.clip(
            (r - self.switch_start) / (self.cutoff - self.switch_start), 0.0, 1.0
        )
        return np.cos(0.5 * math.pi * t) ** 2

    def pair(self, r: np.ndarray) -> np.ndarray:
        """Morse pair potential phi(r) in eV, smoothly truncated."""
        r = np.asarray(r, dtype=float)
        morse = self.d_morse * (
            (1.0 - np.exp(-self.alpha * (r - self.r0))) ** 2 - 1.0
        )
        return morse * self.switch(r)

    def density(self, r: np.ndarray) -> np.ndarray:
        """Electron-density contribution f(r), smoothly truncated."""
        r = np.asarray(r, dtype=float)
        return self.f0 * np.exp(-self.beta * (r / self.r0 - 1.0)) * self.switch(r)

    def embedding(self, rho: np.ndarray) -> np.ndarray:
        """Embedding energy F(rho) = -a * sqrt(rho) in eV."""
        rho = np.asarray(rho, dtype=float)
        return -self.a_embed * np.sqrt(np.maximum(rho, 0.0))

    def equilibrium_rho(self, a: float = FE_LATTICE_CONSTANT) -> float:
        """Electron density at a perfect BCC site (shell sums to cutoff)."""
        shells = [
            (8, math.sqrt(3.0) / 2.0 * a),
            (6, a),
            (12, math.sqrt(2.0) * a),
            (24, math.sqrt(11.0) / 2.0 * a),
            (8, math.sqrt(3.0) * a),
        ]
        return float(
            sum(n * self.density(d) for n, d in shells if d <= self.cutoff)
        )

    def rho_max(self) -> float:
        """Upper bound of the embedding table domain.

        Sized for cascade worst cases — several neighbors compressed to
        ~1.2 A on top of a full equilibrium shell — while keeping the
        knot spacing fine around the equilibrium density (a domain sized
        from f(0) would put the entire working range into the first few
        spline segments and wreck the interpolation).
        """
        crowded = 6.0 * float(self.density(1.2))
        return 20.0 * self.equilibrium_rho() + crowded


def make_fe_tables(
    params: FeParameters | None = None,
    n: int = 5000,
    layout: str = "traditional",
) -> TableSet:
    """Tabulate the analytic model into a :class:`TableSet`.

    Parameters
    ----------
    params:
        Model parameters (defaults to :class:`FeParameters`).
    n:
        Number of spline segments (the paper uses 5000).
    layout:
        ``"traditional"`` (5000 x 7 coefficients) or ``"compacted"``
        (5000 samples).
    """
    params = params or FeParameters()
    if layout == "traditional":
        cls = SplineTable
    elif layout == "compacted":
        cls = CompactTable
    else:
        raise ValueError(f"unknown table layout {layout!r}")
    return TableSet(
        pair=cls.from_function(params.pair, params.cutoff, n=n, name="pair"),
        density=cls.from_function(params.density, params.cutoff, n=n, name="density"),
        embedding=cls.from_function(
            params.embedding, params.rho_max(), n=n, name="embedding"
        ),
    )


def make_fe_potential(
    params: FeParameters | None = None,
    n: int = 5000,
    layout: str = "traditional",
) -> EAMPotential:
    """The iron-like EAM potential used across the reproduction."""
    params = params or FeParameters()
    return EAMPotential(make_fe_tables(params, n=n, layout=layout), params.cutoff)
