"""EAM potential substrate.

Implements the embedded-atom method (Equations 1-3 of the paper) on top of
cubic-spline interpolation tables in the paper's two storage layouts:

* :class:`~repro.potential.spline.SplineTable` — the *traditional* layout
  used by LAMMPS/CoMD: a ``(n+1) x 7`` coefficient matrix (~273 KB for
  n = 5000), columns 0-2 holding derivative coefficients and columns 3-6
  the cubic value coefficients.
* :class:`~repro.potential.compact.CompactTable` — the paper's *compacted*
  layout: only the ``n+1`` sampled values (~39 KB), with segment
  coefficients reconstructed on the fly via the five-point interpolation
  formula of Figure 5.

Both layouts evaluate to identical values, which the test suite asserts.
"""

from repro.potential.spline import SplineTable
from repro.potential.compact import CompactTable
from repro.potential.eam import EAMPotential, TableSet
from repro.potential.fe import make_fe_potential, FeParameters
from repro.potential.alloy import AlloyTables, plan_local_store_residency

__all__ = [
    "AlloyTables",
    "CompactTable",
    "EAMPotential",
    "FeParameters",
    "SplineTable",
    "TableSet",
    "make_fe_potential",
    "plan_local_store_residency",
]
