"""Embedded-atom method (EAM) potential over interpolation tables.

Implements Equations (1)-(3) of the paper:

    E_total = sum_i e_i + sum_i F(rho_i)
    e_i     = 1/2 sum_{j != i} phi_ij(r_ij)
    rho_i   = sum_{j != i} f_ij(r_ij)

where ``phi`` is the pair potential, ``f`` the electron-cloud density
contribution, and ``F`` the embedding energy.  All three are tabulated
functions queried through either the traditional or the compacted table
layout; the physics is identical either way.

Force on atom i (the MD kernel's core):

    F_i = - sum_j [ phi'(r_ij) + (F'(rho_i) + F'(rho_j)) * f'(r_ij) ] * r_ij_hat
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.potential.compact import CompactTable
from repro.potential.spline import SplineTable

Layout = Literal["traditional", "compacted"]


@dataclass
class TableSet:
    """The three interpolation tables of one atomic pair interaction.

    ``pair`` and ``density`` are tabulated over distance ``r`` in
    ``[0, cutoff]``; ``embedding`` is tabulated over electron density
    ``rho`` in ``[0, rho_max]``.
    """

    pair: SplineTable | CompactTable
    density: SplineTable | CompactTable
    embedding: SplineTable | CompactTable

    @property
    def nbytes(self) -> int:
        """Total payload bytes of the three tables."""
        return self.pair.nbytes + self.density.nbytes + self.embedding.nbytes

    @property
    def layout(self) -> str:
        return self.pair.layout

    def compacted(self) -> "TableSet":
        """The same tables in the compacted layout."""
        return TableSet(
            pair=_to_compact(self.pair),
            density=_to_compact(self.density),
            embedding=_to_compact(self.embedding),
        )

    def traditional(self) -> "TableSet":
        """The same tables in the traditional layout."""
        return TableSet(
            pair=_to_spline(self.pair),
            density=_to_spline(self.density),
            embedding=_to_spline(self.embedding),
        )


def _to_compact(t):
    return t if isinstance(t, CompactTable) else CompactTable.from_spline(t)


def _to_spline(t):
    return t if isinstance(t, SplineTable) else t.to_spline()


class EAMPotential:
    """EAM energy/force evaluation backed by a :class:`TableSet`.

    Parameters
    ----------
    tables:
        The pair / density / embedding tables.
    cutoff:
        Interaction cutoff radius in angstrom.  Must not exceed the
        tabulated distance range.
    """

    def __init__(self, tables: TableSet, cutoff: float) -> None:
        if cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        if cutoff > tables.pair.xmax + 1e-9:
            raise ValueError(
                f"cutoff {cutoff} exceeds pair table range {tables.pair.xmax}"
            )
        self.tables = tables
        self.cutoff = float(cutoff)

    # ------------------------------------------------------------------
    # Scalar/vectorized table queries
    # ------------------------------------------------------------------
    def phi(self, r):
        """Pair potential at distance(s) ``r``; zero beyond the cutoff."""
        r = np.asarray(r, dtype=float)
        return np.where(r <= self.cutoff, self.tables.pair(r), 0.0)

    def dphi(self, r):
        """Pair potential derivative; zero beyond the cutoff."""
        r = np.asarray(r, dtype=float)
        return np.where(r <= self.cutoff, self.tables.pair.derivative(r), 0.0)

    def fdens(self, r):
        """Electron-density contribution at distance(s) ``r``."""
        r = np.asarray(r, dtype=float)
        return np.where(r <= self.cutoff, self.tables.density(r), 0.0)

    def dfdens(self, r):
        """Density contribution derivative."""
        r = np.asarray(r, dtype=float)
        return np.where(r <= self.cutoff, self.tables.density.derivative(r), 0.0)

    def embed(self, rho):
        """Embedding energy at density(ies) ``rho``."""
        return self.tables.embedding(rho)

    def dembed(self, rho):
        """Embedding energy derivative."""
        return self.tables.embedding.derivative(rho)

    # ------------------------------------------------------------------
    # Cluster-level evaluation (used by KMC rates and as a reference
    # implementation for the MD force kernels)
    # ------------------------------------------------------------------
    def site_energy(self, distances: np.ndarray) -> float:
        """Energy of one atom given distances to all neighbors in cutoff.

        ``e_i + F(rho_i)`` of Equations (1)-(3); the 1/2 on the pair term
        assigns half of each bond to this atom.
        """
        d = np.asarray(distances, dtype=float)
        d = d[d <= self.cutoff]
        rho = float(np.sum(self.fdens(d)))
        return 0.5 * float(np.sum(self.phi(d))) + float(self.embed(rho))

    def total_energy(self, positions: np.ndarray, box=None) -> float:
        """Reference O(N^2) total energy of a small configuration.

        Intended for tests and tiny systems only; production paths go
        through the neighbor structures in :mod:`repro.md`.
        """
        pos = np.asarray(positions, dtype=float)
        delta = pos[None, :, :] - pos[:, None, :]
        if box is not None:
            delta = box.minimum_image(delta)
        r = np.linalg.norm(delta, axis=-1)
        mask = (r > 0) & (r <= self.cutoff)
        pair = 0.5 * np.sum(self.phi(np.where(mask, r, self.cutoff + 1.0)) * mask)
        rho = np.sum(self.fdens(np.where(mask, r, self.cutoff + 1.0)) * mask, axis=1)
        return float(pair + np.sum(self.embed(rho)))

    def pairwise_forces(self, positions: np.ndarray, box=None) -> np.ndarray:
        """Reference O(N^2) forces of a small configuration (eV/A)."""
        pos = np.asarray(positions, dtype=float)
        delta = pos[None, :, :] - pos[:, None, :]  # delta[i, j] = r_j - r_i
        if box is not None:
            delta = box.minimum_image(delta)
        r = np.linalg.norm(delta, axis=-1)
        mask = (r > 0) & (r <= self.cutoff)
        rsafe = np.where(mask, r, 1.0)
        rho = np.sum(self.fdens(rsafe) * mask, axis=1)
        dF = self.dembed(rho)
        # Scalar bond force magnitude / r for each pair.
        coeff = (self.dphi(rsafe) + (dF[:, None] + dF[None, :]) * self.dfdens(rsafe))
        coeff = np.where(mask, coeff / rsafe, 0.0)
        # F_i = -sum_j coeff_ij * (r_i - r_j) = +sum_j coeff_ij * delta_ij
        return np.einsum("ij,ijk->ik", coeff, delta)

    def with_layout(self, layout: Layout) -> "EAMPotential":
        """This potential with tables converted to the requested layout."""
        if layout == "traditional":
            return EAMPotential(self.tables.traditional(), self.cutoff)
        if layout == "compacted":
            return EAMPotential(self.tables.compacted(), self.cutoff)
        raise ValueError(f"unknown table layout {layout!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EAMPotential(cutoff={self.cutoff}, layout={self.tables.layout!r}, "
            f"nbytes={self.tables.nbytes})"
        )
