"""Multi-species (alloy) table sets and local-store residency planning.

§2.1.2 of the paper: "For alloy materials, more interpolation tables are
used, since there are different kinds of interaction for different atomic
pairs. Taking the Fe-Cu alloy as an example, there are three kinds of
electron cloud density tables, for the atomic pairs of Fe-Fe, Cu-Cu, and
Fe-Cu ... we only load the compacted table for the element with the
highest content in the local store, since it would be the most frequently
used, and leave the other tables in the main memory."

:class:`AlloyTables` holds per-pair and per-species tables;
:func:`plan_local_store_residency` reproduces the paper's residency policy
against a capacity budget (the CPE's 64 KB local store).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.potential.eam import TableSet
from repro.potential.fe import FeParameters, make_fe_tables


def _pair_key(s1: str, s2: str) -> tuple[str, str]:
    """Canonical unordered species-pair key (interactions are symmetric)."""
    return (s1, s2) if s1 <= s2 else (s2, s1)


@dataclass
class AlloyTables:
    """Interpolation tables of a multi-species EAM system.

    Attributes
    ----------
    species:
        Species symbols, e.g. ``("Fe", "Cu")``.
    concentrations:
        Atomic fraction of each species (sums to 1).
    pair_tables:
        Pair-potential and cross-density tables keyed by unordered pair.
    embedding_tables:
        Per-species embedding tables.
    """

    species: tuple[str, ...]
    concentrations: dict[str, float]
    pair_tables: dict[tuple[str, str], TableSet] = field(default_factory=dict)
    embedding_tables: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        total = sum(self.concentrations.get(s, 0.0) for s in self.species)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"species concentrations must sum to 1, got {total}"
            )
        for s, c in self.concentrations.items():
            if c < 0:
                raise ValueError(f"negative concentration for {s}: {c}")

    @property
    def npairs(self) -> int:
        """Number of distinct unordered species pairs (k*(k+1)/2)."""
        k = len(self.species)
        return k * (k + 1) // 2

    def tables_for(self, s1: str, s2: str) -> TableSet:
        """The table set governing the interaction of species s1-s2."""
        key = _pair_key(s1, s2)
        if key not in self.pair_tables:
            raise KeyError(f"no tables registered for pair {key}")
        return self.pair_tables[key]

    def dominant_species(self) -> str:
        """The species with the highest content (paper's residency pick)."""
        return max(self.species, key=lambda s: self.concentrations[s])

    def table_inventory(self) -> list[tuple[str, int, float]]:
        """(label, payload bytes, access weight) of every *individual* table.

        The residency unit is one table — exactly the paper's "we only
        load the compacted table for the element with the highest content"
        — because a 64 KB local store cannot hold even one full pair's
        three-table set.  The access weight of a pair table is the
        probability that a random bond involves that pair (``2*c1*c2``
        off-diagonal, ``c^2`` on-diagonal); embedding tables are queried
        once per atom rather than per bond, hence the lower weight.
        """
        rows = []
        for (s1, s2), tabs in sorted(self.pair_tables.items()):
            c1 = self.concentrations[s1]
            c2 = self.concentrations[s2]
            weight = c1 * c1 if s1 == s2 else 2.0 * c1 * c2
            rows.append((f"{s1}-{s2}:pair", tabs.pair.nbytes, weight))
            rows.append((f"{s1}-{s2}:density", tabs.density.nbytes, weight))
        for s in self.species:
            if s in self.embedding_tables:
                rows.append(
                    (
                        f"{s}:embedding",
                        self.embedding_tables[s].nbytes,
                        0.25 * self.concentrations[s],
                    )
                )
        return rows


def make_fe_cu_alloy(
    cu_fraction: float = 0.01,
    n: int = 5000,
    layout: str = "compacted",
) -> AlloyTables:
    """A dilute Fe-Cu alloy table system (the paper's worked example).

    The Cu-Cu and Fe-Cu interactions derive from the calibrated Fe model:
    Cu bonds slightly weaker, and the cross pair weaker still so that
    mixing carries an energy penalty (2*phi_FeCu > phi_FeFe + phi_CuCu in
    well depth) — the demixing thermodynamics behind Cu precipitation in
    alpha-Fe, the phenomenon of the paper's timescale reference [2]
    (Castin, Pascuet & Malerba 2011).
    """
    if not 0.0 <= cu_fraction <= 1.0:
        raise ValueError(f"cu_fraction must be in [0, 1], got {cu_fraction}")
    fe = FeParameters()
    cu = FeParameters(d_morse=0.85 * fe.d_morse, f0=0.90)
    fecu = FeParameters(d_morse=0.72 * fe.d_morse, f0=0.95)
    alloy = AlloyTables(
        species=("Fe", "Cu"),
        concentrations={"Fe": 1.0 - cu_fraction, "Cu": cu_fraction},
    )
    alloy.pair_tables[_pair_key("Fe", "Fe")] = make_fe_tables(fe, n=n, layout=layout)
    alloy.pair_tables[_pair_key("Cu", "Cu")] = make_fe_tables(cu, n=n, layout=layout)
    alloy.pair_tables[_pair_key("Fe", "Cu")] = make_fe_tables(fecu, n=n, layout=layout)
    alloy.embedding_tables["Fe"] = alloy.pair_tables[_pair_key("Fe", "Fe")].embedding
    alloy.embedding_tables["Cu"] = alloy.pair_tables[_pair_key("Cu", "Cu")].embedding
    return alloy


@dataclass(frozen=True)
class ResidencyPlan:
    """Outcome of local-store residency planning.

    ``resident`` table-set labels fit in the local store and are loaded
    once; ``main_memory`` labels stay in main memory and pay per-access
    DMA.  ``resident_bytes`` is the budget actually consumed;
    ``hit_weight`` is the fraction of bond evaluations served from the
    local store.
    """

    resident: tuple[str, ...]
    main_memory: tuple[str, ...]
    resident_bytes: int
    hit_weight: float


def plan_local_store_residency(
    alloy: AlloyTables,
    capacity_bytes: int,
    reserve_bytes: int = 16 * 1024,
) -> ResidencyPlan:
    """Choose which table sets live in the CPE local store.

    Greedy by access weight (bond probability), exactly the paper's
    heuristic generalized: "only load the compacted table for the element
    with the highest content in the local store, since it would be the
    most frequently used, and leave the other tables in the main memory."
    ``reserve_bytes`` is kept free for atom-block buffers.
    """
    if capacity_bytes <= reserve_bytes:
        raise ValueError(
            f"capacity {capacity_bytes} does not exceed reserve {reserve_bytes}"
        )
    budget = capacity_bytes - reserve_bytes
    inventory = sorted(alloy.table_inventory(), key=lambda row: -row[2])
    resident: list[str] = []
    spill: list[str] = []
    used = 0
    hit = 0.0
    for label, nbytes, weight in inventory:
        if used + nbytes <= budget:
            resident.append(label)
            used += nbytes
            hit += weight
        else:
            spill.append(label)
    return ResidencyPlan(
        resident=tuple(resident),
        main_memory=tuple(spill),
        resident_bytes=used,
        hit_weight=hit,
    )
