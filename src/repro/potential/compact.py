"""Compacted interpolation tables (the paper's §2.1.2 contribution).

The traditional ``(n+1) x 7`` coefficient matrix is ~273 KB for n = 5000 —
too large for the 64 KB CPE local store, forcing 3 DMA gets per neighbor
per time step.  The compacted table keeps only the ``n + 1`` sampled values
(~39 KB, "1/7 of the traditional table") and reconstructs the cubic
segment coefficients *on the fly* from five consecutive samples, using the
same five-point derivative formula shown in Figure 5:

    L[m,5] = ( S[m-2] - S[m+2] + 8*(S[m+1] - S[m-1]) ) / 12

The trade is extra arithmetic per evaluation for a 7x smaller resident
footprint — exactly the trade the paper makes, amortized by eliminating
per-neighbor DMA traffic.

:class:`CompactTable` evaluates to results identical to
:class:`~repro.potential.spline.SplineTable` built from the same samples
(the test suite asserts agreement to floating-point roundoff).
"""

from __future__ import annotations

import numpy as np

from repro.potential.spline import SplineTable


class CompactTable:
    """Sampled-value interpolation table with on-the-fly reconstruction.

    Parameters
    ----------
    samples:
        Function values at the ``n + 1`` uniform knots over ``[0, xmax]``.
    xmax:
        Upper end of the tabulated domain.
    name:
        Optional label.
    """

    layout = "compacted"

    def __init__(self, samples: np.ndarray, xmax: float, name: str = "") -> None:
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1:
            raise ValueError("samples must be one-dimensional")
        if len(samples) < 5:
            raise ValueError("need at least 5 samples")
        if xmax <= 0:
            raise ValueError(f"xmax must be positive, got {xmax}")
        self.samples = samples
        self.n = len(samples) - 1
        self.xmax = float(xmax)
        self.dx = self.xmax / self.n
        self.name = name

    @classmethod
    def from_function(
        cls, func, xmax: float, n: int = 5000, name: str = ""
    ) -> "CompactTable":
        """Tabulate ``func`` at ``n + 1`` uniform knots over ``[0, xmax]``."""
        x = np.linspace(0.0, xmax, n + 1)
        return cls(func(x), xmax, name=name)

    @classmethod
    def from_spline(cls, table: SplineTable) -> "CompactTable":
        """Compact an existing traditional table (drop the coefficients)."""
        return cls(table.samples.copy(), table.xmax, name=table.name)

    def to_spline(self) -> SplineTable:
        """Expand back to the traditional layout."""
        return SplineTable(self.samples.copy(), self.xmax, name=self.name)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the table payload in bytes."""
        return self.samples.nbytes

    def _knot_derivative(self, m: np.ndarray) -> np.ndarray:
        """Five-point derivative at knots ``m``, with boundary fallbacks.

        Vectorized equivalent of
        :func:`repro.potential.spline.knot_derivatives` evaluated only at
        the requested knots — this is the "interpolation formula" a slave
        core applies to its resident samples.
        """
        s = self.samples
        n = self.n
        m = np.asarray(m)
        mc = np.clip(m, 2, n - 2)
        five_point = (s[mc - 2] - s[mc + 2] + 8.0 * (s[mc + 1] - s[mc - 1])) / 12.0
        d = five_point
        d = np.where(m == 0, s[1] - s[0], d)
        d = np.where(m == 1, 0.5 * (s[2] - s[0]), d)
        d = np.where(m == n - 1, 0.5 * (s[n] - s[n - 2]), d)
        d = np.where(m == n, s[n] - s[n - 1], d)
        return d

    def _locate(self, x):
        x = np.asarray(x, dtype=float)
        scaled = x / self.dx
        m = np.clip(scaled.astype(int), 0, self.n - 1)
        p = np.clip(scaled - m, 0.0, 1.0)
        return m, p

    def _segment(self, m):
        """On-the-fly cubic coefficients (c3, c4, c5, c6) of segments ``m``."""
        s = self.samples
        d0 = self._knot_derivative(m)
        d1 = self._knot_derivative(m + 1)
        df = s[m + 1] - s[m]
        c6 = s[m]
        c5 = d0
        c4 = 3.0 * df - 2.0 * d0 - d1
        c3 = d0 + d1 - 2.0 * df
        return c3, c4, c5, c6

    def __call__(self, x):
        """Interpolated value(s) at ``x`` (clamped to the table domain)."""
        m, p = self._locate(x)
        c3, c4, c5, c6 = self._segment(m)
        return ((c3 * p + c4) * p + c5) * p + c6

    def derivative(self, x):
        """Interpolated derivative(s) at ``x``."""
        m, p = self._locate(x)
        c3, c4, c5, _c6 = self._segment(m)
        return ((3.0 * c3 * p + 2.0 * c4) * p + c5) / self.dx

    def value_and_derivative(self, x):
        """Both value and derivative with a single reconstruction."""
        m, p = self._locate(x)
        c3, c4, c5, c6 = self._segment(m)
        value = ((c3 * p + c4) * p + c5) * p + c6
        deriv = ((3.0 * c3 * p + 2.0 * c4) * p + c5) / self.dx
        return value, deriv

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompactTable(name={self.name!r}, n={self.n}, xmax={self.xmax}, "
            f"nbytes={self.nbytes})"
        )


def compaction_ratio(n: int = 5000) -> float:
    """Payload size ratio compacted/traditional for an ``n``-segment table.

    For n = 5000 this is 1/7 — the paper's "39 KB (1/7 of the traditional
    table)".
    """
    traditional = (n + 1) * 7 * 8
    compacted = (n + 1) * 8
    return compacted / traditional
