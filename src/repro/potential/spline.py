"""Traditional cubic-spline interpolation tables (LAMMPS/CoMD layout).

A tabulated function on ``n`` uniform segments over ``[0, xmax]`` is stored
as an ``(n + 1) x 7`` coefficient matrix.  For a query ``x`` falling in
segment ``m`` with fractional position ``p = x/dx - m``:

    value      = ((C[m,3]*p + C[m,4])*p + C[m,5])*p + C[m,6]
    derivative = ( C[m,0]*p + C[m,1])*p + C[m,2]

Columns 3-6 are the cubic value coefficients and columns 0-2 the
pre-scaled derivative coefficients — exactly the "5000 x 7 2D array ...
columns 3-6 are the coefficients of a cubic function and the columns 0-2
are the coefficients of its derivative function" described in §2.1.2 and
Figure 5 of the paper.

The knot-derivative estimate used during construction is the five-point
formula the paper compacts against:

    C[m,5] = ( (S[m-2] - S[m+2]) + 8*(S[m+1] - S[m-1]) ) / 12
"""

from __future__ import annotations

import numpy as np


def knot_derivatives(samples: np.ndarray) -> np.ndarray:
    """Per-knot derivative estimates (in units of the knot spacing).

    Interior knots use the five-point central difference of Figure 5;
    the first/last two knots fall back to lower-order one-sided and
    three-point formulas, matching the construction in LAMMPS ``pair_eam``.
    """
    s = np.asarray(samples, dtype=float)
    n = len(s)
    if n < 5:
        raise ValueError(f"need at least 5 samples for spline tables, got {n}")
    d = np.empty(n)
    d[0] = s[1] - s[0]
    d[1] = 0.5 * (s[2] - s[0])
    d[2:-2] = ((s[:-4] - s[4:]) + 8.0 * (s[3:-1] - s[1:-3])) / 12.0
    d[-2] = 0.5 * (s[-1] - s[-3])
    d[-1] = s[-1] - s[-2]
    return d


def segment_coefficients(samples: np.ndarray, dx: float) -> np.ndarray:
    """Build the full ``(n+1) x 7`` coefficient matrix from sampled values."""
    s = np.asarray(samples, dtype=float)
    d = knot_derivatives(s)
    n = len(s)
    coeff = np.zeros((n, 7))
    coeff[:, 6] = s
    coeff[:, 5] = d
    # Hermite cubic over [m, m+1] in fractional coordinates; the final knot
    # keeps a degenerate (constant-extrapolation) segment.
    df = s[1:] - s[:-1]
    coeff[:-1, 4] = 3.0 * df - 2.0 * d[:-1] - d[1:]
    coeff[:-1, 3] = d[:-1] + d[1:] - 2.0 * df
    # Pre-scaled derivative coefficients (d/dx, not d/dp).
    coeff[:, 2] = coeff[:, 5] / dx
    coeff[:, 1] = 2.0 * coeff[:, 4] / dx
    coeff[:, 0] = 3.0 * coeff[:, 3] / dx
    return coeff


class SplineTable:
    """A traditionally-laid-out interpolation table.

    Parameters
    ----------
    samples:
        Function values at the ``n + 1`` uniformly spaced knots
        ``0, dx, 2*dx, ..., xmax``.
    xmax:
        Upper end of the tabulated domain.
    name:
        Optional label (e.g. ``"pair"``, ``"density"``, ``"embedding"``).
    """

    layout = "traditional"

    def __init__(self, samples: np.ndarray, xmax: float, name: str = "") -> None:
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1:
            raise ValueError("samples must be one-dimensional")
        if xmax <= 0:
            raise ValueError(f"xmax must be positive, got {xmax}")
        self.n = len(samples) - 1
        self.xmax = float(xmax)
        self.dx = self.xmax / self.n
        self.name = name
        self.coeff = segment_coefficients(samples, self.dx)

    @classmethod
    def from_function(
        cls, func, xmax: float, n: int = 5000, name: str = ""
    ) -> "SplineTable":
        """Tabulate ``func`` at ``n + 1`` uniform knots over ``[0, xmax]``."""
        x = np.linspace(0.0, xmax, n + 1)
        return cls(func(x), xmax, name=name)

    @property
    def samples(self) -> np.ndarray:
        """The knot values (column 6 of the coefficient matrix)."""
        return self.coeff[:, 6]

    @property
    def nbytes(self) -> int:
        """Memory footprint of the table payload in bytes."""
        return self.coeff.nbytes

    def _locate(self, x):
        x = np.asarray(x, dtype=float)
        scaled = x / self.dx
        m = np.clip(scaled.astype(int), 0, self.n - 1)
        p = np.clip(scaled - m, 0.0, 1.0)
        return m, p

    def __call__(self, x):
        """Interpolated value(s) at ``x`` (clamped to the table domain)."""
        m, p = self._locate(x)
        c = self.coeff[m]
        return ((c[..., 3] * p + c[..., 4]) * p + c[..., 5]) * p + c[..., 6]

    def derivative(self, x):
        """Interpolated derivative(s) at ``x``."""
        m, p = self._locate(x)
        c = self.coeff[m]
        return (c[..., 0] * p + c[..., 1]) * p + c[..., 2]

    def value_and_derivative(self, x):
        """Both value and derivative with a single table lookup."""
        m, p = self._locate(x)
        c = self.coeff[m]
        value = ((c[..., 3] * p + c[..., 4]) * p + c[..., 5]) * p + c[..., 6]
        deriv = (c[..., 0] * p + c[..., 1]) * p + c[..., 2]
        return value, deriv

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SplineTable(name={self.name!r}, n={self.n}, xmax={self.xmax}, "
            f"nbytes={self.nbytes})"
        )
