"""Validated top-level configuration helpers.

Collects the cross-cutting knobs of a damage-simulation campaign in one
validated object, with presets matching the paper's §3 setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import DEFAULT_TEMPERATURE, FE_LATTICE_CONSTANT
from repro.kmc.events import RateParameters
from repro.md.cascade import CascadeConfig
from repro.md.engine import MDConfig


@dataclass(frozen=True)
class SimulationConfig:
    """A complete, validated campaign configuration.

    Attributes
    ----------
    cells:
        Conventional cells per axis of the cubic box.
    lattice_constant:
        BCC lattice constant in angstrom (paper: 2.855).
    temperature:
        Temperature in kelvin (paper: 600).
    md / cascade / rates:
        Stage-specific parameter blocks, pre-wired to the shared
        temperature.
    seed:
        Master seed from which every stage's RNG streams derive.
    """

    cells: int = 8
    lattice_constant: float = FE_LATTICE_CONSTANT
    temperature: float = DEFAULT_TEMPERATURE
    seed: int = 2018
    md: MDConfig = field(default_factory=MDConfig)
    cascade: CascadeConfig = field(default_factory=CascadeConfig)
    rates: RateParameters = field(default_factory=RateParameters)

    def __post_init__(self) -> None:
        if self.cells < 5:
            raise ValueError(
                f"cells must be >= 5 (box >= 2*(cutoff+skin)), got {self.cells}"
            )
        if self.lattice_constant <= 0:
            raise ValueError("lattice_constant must be positive")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        for name, value in (
            ("md.temperature", self.md.temperature),
            ("cascade.temperature", self.cascade.temperature),
            ("rates.temperature", self.rates.temperature),
        ):
            if abs(value - self.temperature) > 1e-9:
                raise ValueError(
                    f"{name}={value} disagrees with the campaign temperature "
                    f"{self.temperature}; build stage configs via paper_setup()"
                )

    @property
    def nsites(self) -> int:
        return 2 * self.cells**3


def paper_setup(cells: int = 8, seed: int = 2018) -> SimulationConfig:
    """The paper's §3 configuration at a chosen (toy) box size.

    Fe at 600 K, lattice constant 2.855, 1 fs MD steps; stage configs all
    share the campaign temperature.
    """
    t = DEFAULT_TEMPERATURE
    return SimulationConfig(
        cells=cells,
        temperature=t,
        seed=seed,
        md=MDConfig(temperature=t, seed=seed),
        cascade=CascadeConfig(temperature=t),
        rates=RateParameters(temperature=t),
    )
