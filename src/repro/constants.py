"""Physical constants and the internal unit system.

The library uses the "metal" unit convention common to materials MD codes
(LAMMPS ``units metal``):

========== ==============================
quantity   unit
========== ==============================
length     angstrom (A)
energy     electron-volt (eV)
mass       atomic mass unit (amu / g/mol)
time       picosecond (ps)
velocity   A / ps
force      eV / A
temperature kelvin (K)
========== ==============================

With these choices the kinetic energy of an atom is
``0.5 * mass * MVV2E * |v|^2`` in eV, where :data:`MVV2E` converts
``amu * (A/ps)^2`` to eV.
"""

from __future__ import annotations

import math

#: Boltzmann constant in eV / K.
KB_EV: float = 8.617333262e-5

#: Conversion factor: amu * (A/ps)^2 -> eV.
#: 1 amu = 1.66053906660e-27 kg; 1 A/ps = 100 m/s;
#: 1 eV = 1.602176634e-19 J  =>  amu*(A/ps)^2 = 1.0364269e-4 eV.
MVV2E: float = 1.0364269574711572e-4

#: Conversion factor: (eV/A)/amu -> A/ps^2 (force/mass to acceleration).
FM2A: float = 1.0 / MVV2E

#: Mass of an iron atom in amu.
FE_MASS: float = 55.845

#: Mass of a copper atom in amu.
CU_MASS: float = 63.546

#: Equilibrium BCC lattice constant of alpha-iron in angstrom,
#: as used by the paper ("The lattice constant is set to 2.855").
FE_LATTICE_CONSTANT: float = 2.855

#: Vacancy formation energy of alpha-iron in eV.  The paper does not state
#: its value, but its 19.2-day result pins it: with t_threshold = 2e-4,
#: C_MC = 2e-6 and T = 600 K, t_real = t_threshold * C_MC / exp(-E/kT)
#: equals 19.2 days for E ~= 1.8593 eV (close to the ~2 eV literature
#: range for Fe).  We adopt that back-solved value so the timescale
#: arithmetic reproduces the paper's number exactly.
FE_VACANCY_FORMATION_ENERGY: float = 1.8593

#: Default simulation temperature used throughout the paper's evaluation (K).
DEFAULT_TEMPERATURE: float = 600.0

#: Seconds per picosecond.
PS_TO_S: float = 1e-12

#: Seconds per day.
DAY_TO_S: float = 86400.0

#: Number of atoms per BCC conventional unit cell (corner share + center).
BCC_ATOMS_PER_CELL: int = 2


def thermal_velocity_sigma(temperature: float, mass: float) -> float:
    """Standard deviation of one velocity component (A/ps) at ``temperature``.

    From equipartition, each Cartesian component of velocity is normally
    distributed with variance ``kB*T / m`` (in internal units the energy
    conversion :data:`MVV2E` appears).

    Parameters
    ----------
    temperature:
        Temperature in kelvin.
    mass:
        Atomic mass in amu.
    """
    if temperature < 0:
        raise ValueError(f"temperature must be non-negative, got {temperature}")
    if mass <= 0:
        raise ValueError(f"mass must be positive, got {mass}")
    return math.sqrt(KB_EV * temperature / (mass * MVV2E))


def kinetic_energy(mass: float, vx: float, vy: float, vz: float) -> float:
    """Kinetic energy (eV) of one atom of ``mass`` amu with velocity in A/ps."""
    return 0.5 * mass * MVV2E * (vx * vx + vy * vy + vz * vz)
