"""Defect formation and binding energies from the EAM model.

Static (unrelaxed) energetics of point defects, computed on the on-lattice
KMC energy stencil — the quantities that decide whether the simulated
physics can reproduce the paper's vacancy-clustering result:

* vacancy formation energy (cost of removing one atom),
* divacancy binding energy (gain of bringing two vacancies together,
  which must exceed kB*T at 600 K for clusters to survive).
"""

from __future__ import annotations

import numpy as np

from repro.kmc.events import ATOM, VACANCY, KMCModel


def configuration_energy(model: KMCModel, occ: np.ndarray) -> float:
    """Total on-lattice energy: sum of site energies over occupied rows."""
    rows = np.flatnonzero(occ == ATOM)
    return float(np.sum(model.site_energy(rows, occ)))


def vacancy_formation_energy(model: KMCModel, row: int = 0) -> float:
    """Unrelaxed monovacancy formation energy (eV).

    ``E_f = E(N-1 atoms with vacancy) - (N-1)/N * E(perfect)`` — the
    standard supercell formula.
    """
    occ = model.perfect_occupancy()
    e_perfect = configuration_energy(model, occ)
    occ[row] = VACANCY
    e_vac = configuration_energy(model, occ)
    n = model.nrows
    return e_vac - (n - 1) / n * e_perfect


def divacancy_binding_energy(model: KMCModel, row: int = 0, shell: int = 1) -> float:
    """Unrelaxed divacancy binding energy (eV), positive = bound.

    ``E_b = 2 E_f(mono) - E_f(di)`` with the two vacancies at first- or
    second-shell separation.
    """
    occ = model.perfect_occupancy()
    e_perfect = configuration_energy(model, occ)
    n = model.nrows
    e_f_mono = vacancy_formation_energy(model, row)
    if shell == 1:
        partner = int(model.lattice.first_shell_ranks(row)[0])
    elif shell == 2:
        partner = int(model.lattice.second_shell_ranks(row)[0])
    else:
        raise ValueError(f"shell must be 1 or 2, got {shell}")
    occ[row] = VACANCY
    occ[partner] = VACANCY
    e_di = configuration_energy(model, occ)
    e_f_di = e_di - (n - 2) / n * e_perfect
    return 2.0 * e_f_mono - e_f_di


def cluster_binding_per_vacancy(
    model: KMCModel, cluster_rows: np.ndarray
) -> float:
    """Binding energy per vacancy of an arbitrary vacancy cluster (eV).

    ``(k * E_f(mono) - E_f(cluster)) / k`` — how much each vacancy gains
    by sitting in the cluster rather than alone.
    """
    cluster_rows = np.asarray(cluster_rows, dtype=np.int64)
    k = len(cluster_rows)
    if k < 1:
        raise ValueError("cluster must contain at least one vacancy")
    occ = model.perfect_occupancy()
    e_perfect = configuration_energy(model, occ)
    n = model.nrows
    e_f_mono = vacancy_formation_energy(model, int(cluster_rows[0]))
    occ[cluster_rows] = VACANCY
    e_cluster = configuration_energy(model, occ)
    e_f_cluster = e_cluster - (n - k) / n * e_perfect
    return (k * e_f_mono - e_f_cluster) / k
