"""Post-processing: defect identification and damage statistics."""

from repro.analysis.vacancies import (
    identify_vacancies,
    identify_interstitials,
    frenkel_pairs,
    vacancy_concentration,
)
from repro.analysis.stats import (
    cluster_size_distribution,
    radial_distribution,
    displacement_histogram,
)
from repro.analysis.diffusion import (
    track_single_vacancy,
    arrhenius_fit,
    DiffusionResult,
)
from repro.analysis.energies import (
    vacancy_formation_energy,
    divacancy_binding_energy,
    cluster_binding_per_vacancy,
)

__all__ = [
    "DiffusionResult",
    "arrhenius_fit",
    "cluster_binding_per_vacancy",
    "cluster_size_distribution",
    "displacement_histogram",
    "divacancy_binding_energy",
    "frenkel_pairs",
    "identify_interstitials",
    "identify_vacancies",
    "radial_distribution",
    "track_single_vacancy",
    "vacancy_concentration",
    "vacancy_formation_energy",
]
