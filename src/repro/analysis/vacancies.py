"""Defect identification from MD state (Wigner-Seitz-style analysis).

The lattice neighbor list makes defect identification trivial compared to
a general MD code: vacancy rows are marked in the site array (negative
IDs), and run-away atoms in the linked lists are the interstitials.
These helpers extract and cross-check that inventory.
"""

from __future__ import annotations

import numpy as np

from repro.md.neighbors.lattice_list import LatticeNeighborList
from repro.md.state import AtomState


def identify_vacancies(state: AtomState) -> np.ndarray:
    """Row indices of vacancy sites (negative-ID entries)."""
    return state.vacancy_rows()


def identify_interstitials(nblist: LatticeNeighborList) -> list:
    """The run-away atoms — off-lattice interstitials."""
    return nblist.runaways


def frenkel_pairs(state: AtomState, nblist: LatticeNeighborList) -> int:
    """Count of vacancy/interstitial (Frenkel) pairs.

    In a cascade every interstitial left a vacancy behind, so the pair
    count is the smaller of the two inventories (captures may have
    annihilated some).
    """
    return min(state.nvacancies, nblist.n_runaways)


def vacancy_concentration(state: AtomState) -> float:
    """Fraction of lattice sites that are vacant — the paper's C_MC.

    "C_MC_v ... is easily obtained by calculating the percentage of
    vacancies in atoms."
    """
    if state.n == 0:
        raise ValueError("state has no sites")
    return state.nvacancies / state.n


def conservation_check(state: AtomState, nblist: LatticeNeighborList) -> bool:
    """Atoms on lattice + run-aways must equal the site count.

    Holds whenever every vacancy was created by exactly one escape and
    every capture consumed exactly one vacancy — the invariant the
    run-away machinery maintains.
    """
    return state.natoms + nblist.n_runaways == state.n
