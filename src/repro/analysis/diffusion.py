"""Vacancy diffusion analysis from KMC trajectories.

The physical validity check of the hop-rate model (Equation 4): tracked
vacancy trajectories must show Einstein diffusion, ``<r^2> = 6 D t``,
with an Arrhenius temperature dependence ``D ~ exp(-E_m / kB T)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.kmc.akmc import SerialAKMC
from repro.kmc.events import VACANCY, KMCModel, RateParameters
from repro.lattice.bcc import BCCLattice
from repro.lattice.box import Box
from repro.potential.eam import EAMPotential


@dataclass
class DiffusionResult:
    """Outcome of a single-vacancy tracer run."""

    temperature: float
    hops: int
    time: float
    msd: float
    diffusion_coefficient: float


def track_single_vacancy(
    lattice: BCCLattice,
    potential: EAMPotential,
    temperature: float,
    nhops: int = 200,
    seed: int = 0,
    start_row: int | None = None,
) -> DiffusionResult:
    """Run one vacancy for ``nhops`` events; return its Einstein statistics.

    The trajectory is unwrapped across periodic boundaries (each hop is a
    first-shell displacement), so the MSD is free of wrap artifacts.
    """
    if nhops < 1:
        raise ValueError(f"nhops must be >= 1, got {nhops}")
    params = RateParameters(temperature=temperature)
    model = KMCModel(lattice, potential, params)
    occ = model.perfect_occupancy()
    row = int(start_row) if start_row is not None else model.nrows // 2
    occ[row] = VACANCY
    engine = SerialAKMC(lattice, potential, params, occ, seed=seed)
    box = Box.for_lattice(lattice)
    position = lattice.position_of(row).astype(float)
    unwrapped = position.copy()
    for _ in range(nhops):
        if engine.step() is None:
            break
        new_row = int(engine.vacancy_rows[0])
        delta = box.minimum_image(
            lattice.position_of(new_row) - lattice.position_of(row)
        )
        unwrapped = unwrapped + delta
        row = new_row
    msd = float(np.sum((unwrapped - position) ** 2))
    d = msd / (6.0 * engine.time) if engine.time > 0 else 0.0
    return DiffusionResult(
        temperature=temperature,
        hops=engine.events,
        time=engine.time,
        msd=msd,
        diffusion_coefficient=d,
    )


def arrhenius_fit(results: list[DiffusionResult]) -> tuple[float, float]:
    """Fit ``D = D0 * exp(-E_a / kB T)`` to tracer results.

    Returns ``(D0, E_a)`` with the activation energy in eV.  Requires at
    least two temperatures with positive D.
    """
    from repro.constants import KB_EV

    pts = [
        (1.0 / (KB_EV * r.temperature), math.log(r.diffusion_coefficient))
        for r in results
        if r.diffusion_coefficient > 0
    ]
    if len(pts) < 2:
        raise ValueError("need >= 2 temperatures with positive D")
    x = np.array([p[0] for p in pts])
    y = np.array([p[1] for p in pts])
    slope, intercept = np.polyfit(x, y, 1)
    return float(math.exp(intercept)), float(-slope)


def theoretical_single_hop_msd(lattice: BCCLattice) -> float:
    """MSD contribution of one first-shell hop: (sqrt(3)/2 a)^2."""
    return 3.0 / 4.0 * lattice.a**2
