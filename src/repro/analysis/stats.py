"""Damage statistics: cluster-size distributions, RDFs, displacement spectra."""

from __future__ import annotations

import numpy as np

from repro.core.clusters import cluster_sizes, vacancy_clusters
from repro.lattice.bcc import BCCLattice
from repro.lattice.box import Box


def cluster_size_distribution(
    lattice: BCCLattice, vacancy_ranks: np.ndarray
) -> dict[int, int]:
    """Histogram {cluster size: count} of the vacancy clusters."""
    sizes = cluster_sizes(vacancy_clusters(lattice, vacancy_ranks))
    out: dict[int, int] = {}
    for s in sizes:
        out[int(s)] = out.get(int(s), 0) + 1
    return out


def radial_distribution(
    positions: np.ndarray,
    box: Box,
    rmax: float,
    nbins: int = 50,
) -> tuple[np.ndarray, np.ndarray]:
    """Radial distribution function g(r) of a point set.

    Returns ``(r_centers, g)``.  Used to verify the BCC structure is
    intact after thermalization (peaks at the shell distances) and to
    characterize vacancy aggregation.
    """
    positions = np.asarray(positions, dtype=float)
    n = len(positions)
    if n < 2:
        raise ValueError("need at least two points for a g(r)")
    if rmax <= 0 or nbins < 1:
        raise ValueError("rmax must be positive and nbins >= 1")
    delta = box.minimum_image(positions[None, :, :] - positions[:, None, :])
    dist = np.linalg.norm(delta, axis=-1)
    iu = np.triu_indices(n, k=1)
    d = dist[iu]
    d = d[d <= rmax]
    counts, edges = np.histogram(d, bins=nbins, range=(0.0, rmax))
    centers = 0.5 * (edges[:-1] + edges[1:])
    # Normalize against the ideal-gas expectation.
    density = n / box.volume
    shell_vol = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    expected = 0.5 * n * density * shell_vol
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(expected > 0, counts / expected, 0.0)
    return centers, g


def displacement_histogram(
    displacements: np.ndarray, nbins: int = 30, dmax: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of atom displacements from their lattice points.

    The bulk thermal peak sits well below the run-away threshold; cascade
    tails extend beyond it.  Returns ``(bin_centers, counts)``.
    """
    displacements = np.asarray(displacements, dtype=float)
    if dmax is None:
        dmax = float(displacements.max()) if len(displacements) else 1.0
        dmax = max(dmax, 1e-6)
    counts, edges = np.histogram(displacements, bins=nbins, range=(0.0, dmax))
    return 0.5 * (edges[:-1] + edges[1:]), counts
