"""Neighbor-finding structures for short-range MD.

The paper's contribution (§2.1.1) plus the two mainstream baselines it
compares against:

========================  =========================  =======================
structure                 used by                    cost profile
========================  =========================  =======================
lattice neighbor list     this paper (Crystal MD)    no per-atom neighbor
                                                     storage; static index
                                                     arithmetic; linked
                                                     lists for run-aways
Verlet neighbor list      LAMMPS                     O(neighbors) memory per
                                                     atom; rebuilt when
                                                     displacements exceed
                                                     half the skin
linked cells              IMD / ls1-MarDyn / CoMD    cell occupancy rebuilt
                                                     every step
========================  =========================  =======================

All three produce identical interaction pair sets on identical
configurations (asserted by the test suite).
"""

from repro.md.neighbors.lattice_list import LatticeNeighborList, RunawayAtom
from repro.md.neighbors.verlet_list import VerletNeighborList
from repro.md.neighbors.linked_cell import LinkedCellList
from repro.md.neighbors.memory import (
    MemoryFootprint,
    lattice_list_footprint,
    verlet_list_footprint,
    linked_cell_footprint,
    max_atoms_in_memory,
)

__all__ = [
    "LatticeNeighborList",
    "LinkedCellList",
    "MemoryFootprint",
    "RunawayAtom",
    "VerletNeighborList",
    "lattice_list_footprint",
    "linked_cell_footprint",
    "max_atoms_in_memory",
    "verlet_list_footprint",
]
