"""Linked-cell (IMD/CoMD-style) baseline.

"Linked cell divides the simulation box into cubic cells, whose edge
length is equal to the cutoff radius ... Each cell maintains all the atoms
within it and the pointers to the neighbor cells. Compared with neighbor
list, linked cell consumes less memory. However, it should update the
atoms within each cell at each time step, which leads to high
computational overhead." (§2.1.1)

The implementation keeps the classic head/next linked arrays so the memory
accounting of :mod:`repro.md.neighbors.memory` reflects the real structure,
while pair enumeration is vectorized per cell pair.
"""

from __future__ import annotations

import numpy as np

from repro.lattice.box import Box
from repro.md.neighbors.verlet_list import _cell_pairs


class LinkedCellList:
    """Cell decomposition with per-step occupancy rebuild.

    Parameters
    ----------
    box:
        Periodic box.
    cutoff:
        Interaction cutoff; cells are at least this wide, so all partners
        of an atom lie in its own or the 26 surrounding cells.
    """

    def __init__(self, box: Box, cutoff: float) -> None:
        if cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        if np.any(box.lengths < 2.0 * cutoff):
            raise ValueError(
                f"box {box.lengths} too small for cutoff {cutoff}"
            )
        self.box = box
        self.cutoff = float(cutoff)
        self.ncells = np.maximum((box.lengths // cutoff).astype(int), 1)
        self.cell_size = box.lengths / self.ncells
        #: head[c] = first atom in cell c, next[i] = next atom in i's cell
        #: (-1 terminates) — the textbook linked-cell arrays.
        self.head: np.ndarray | None = None
        self.next: np.ndarray | None = None
        self.rebuilds = 0

    @property
    def total_cells(self) -> int:
        return int(np.prod(self.ncells))

    def rebuild(self, x: np.ndarray) -> None:
        """Re-bin all atoms (done every step, per the paper's cost note)."""
        x = self.box.wrap(np.asarray(x, dtype=float))
        n = len(x)
        coords = np.minimum((x // self.cell_size).astype(int), self.ncells - 1)
        flat = (coords[:, 0] * self.ncells[1] + coords[:, 1]) * self.ncells[
            2
        ] + coords[:, 2]
        self.head = np.full(self.total_cells, -1, dtype=np.int64)
        self.next = np.full(n, -1, dtype=np.int64)
        for i in range(n):
            c = flat[i]
            self.next[i] = self.head[c]
            self.head[c] = i
        self.rebuilds += 1

    def cell_members(self, c: int) -> list[int]:
        """Atoms of cell ``c`` by walking the linked list."""
        if self.head is None:
            raise RuntimeError("cell list not built; call rebuild() first")
        out = []
        i = int(self.head[c])
        while i != -1:
            out.append(i)
            i = int(self.next[i])
        return out

    def pairs(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Half pair list (i, j) within the cutoff for positions ``x``.

        Rebuilds the cell occupancy first — the per-step overhead the
        paper attributes to linked cells.
        """
        x = np.asarray(x, dtype=float)
        self.rebuild(x)
        i_idx, j_idx = _cell_pairs(self.box, x, self.cutoff)
        if len(i_idx) == 0:
            return i_idx, j_idx
        xw = self.box.wrap(x)
        d = self.box.minimum_image(xw[j_idx] - xw[i_idx])
        keep = np.einsum("ij,ij->i", d, d) <= self.cutoff * self.cutoff
        return i_idx[keep], j_idx[keep]
