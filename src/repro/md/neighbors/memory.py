"""Bytes-per-atom accounting of the three neighbor structures.

Supports the paper's headline memory claim: "Using the traditional data
structures (such as neighbor list), we only simulate about 8.0e11 atoms on
6.656 million cores" versus 4.0e12 with the lattice neighbor list — a ~5x
memory advantage.  The accounting below follows each structure's actual
storage scheme (not our NumPy vectorization choices):

* every structure pays the base atom record: id + position + velocity +
  force + electron density;
* the Verlet list additionally stores, per atom, the index list of all
  neighbors within cutoff + skin, plus the reference positions used by the
  skin criterion;
* linked cells additionally store one `next` pointer per atom and a `head`
  pointer per cell;
* the lattice neighbor list stores *nothing* per atom beyond the base
  record — neighbor indexes are static arithmetic — plus a constant-size
  offset table and linked-list nodes only for the (rare) run-away atoms.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from repro.constants import BCC_ATOMS_PER_CELL, FE_LATTICE_CONSTANT

#: Bytes of the base per-atom record: id(8) + x(24) + v(24) + f(24) + rho(8).
BASE_ATOM_RECORD = 88

#: Bytes of a neighbor index entry (LAMMPS uses 32-bit local indexes).
NEIGHBOR_INDEX_BYTES = 4

#: Bytes of a linked-list pointer.
POINTER_BYTES = 8


def neighbors_within(cutoff: float, a: float = FE_LATTICE_CONSTANT) -> int:
    """Number of BCC sites within ``cutoff`` of a site (exact, by census)."""
    reach = int(math.ceil(cutoff / a)) + 1
    count = 0
    for db in (0, 1):
        for di in range(-reach, reach + 1):
            for dj in range(-reach, reach + 1):
                for dk in range(-reach, reach + 1):
                    d = a * math.sqrt(
                        (di + 0.5 * db) ** 2
                        + (dj + 0.5 * db) ** 2
                        + (dk + 0.5 * db) ** 2
                    )
                    if 0 < d <= cutoff:
                        count += 1
    return count


@dataclass(frozen=True)
class MemoryFootprint:
    """Memory accounting result for one neighbor structure."""

    structure: str
    bytes_per_atom: float
    fixed_bytes: int

    def total_bytes(self, natoms: int) -> float:
        """Total structure memory for ``natoms`` atoms."""
        if natoms < 0:
            raise ValueError(f"natoms must be non-negative, got {natoms}")
        return self.fixed_bytes + self.bytes_per_atom * natoms

    def max_atoms(self, capacity_bytes: float) -> int:
        """Largest atom count fitting in ``capacity_bytes``."""
        usable = capacity_bytes - self.fixed_bytes
        if usable <= 0:
            return 0
        return int(usable // self.bytes_per_atom)


def lattice_list_footprint(
    cutoff: float,
    a: float = FE_LATTICE_CONSTANT,
    runaway_fraction: float = 1e-6,
) -> MemoryFootprint:
    """Lattice neighbor list: base record + rare run-away linked nodes.

    ``runaway_fraction`` is the paper's "several millionth" of atoms off
    lattice; each costs a linked node (record + host pointer + next
    pointer).  The static offset table is a constant.
    """
    m = neighbors_within(cutoff, a)
    offsets_table = 2 * m * 4 * POINTER_BYTES  # two bases, (db,di,dj,dk) rows
    runaway_node = BASE_ATOM_RECORD + 2 * POINTER_BYTES
    per_atom = BASE_ATOM_RECORD + runaway_fraction * runaway_node
    return MemoryFootprint("lattice_list", per_atom, offsets_table)


def verlet_list_footprint(
    cutoff: float,
    skin: float = 0.4,
    a: float = FE_LATTICE_CONSTANT,
) -> MemoryFootprint:
    """Verlet list: base record + per-atom neighbor indexes + skin refs."""
    m = neighbors_within(cutoff + skin, a)
    per_atom = (
        BASE_ATOM_RECORD
        + m * NEIGHBOR_INDEX_BYTES  # the neighbor index list
        + POINTER_BYTES  # per-atom list length/offset bookkeeping
        + 24  # reference positions for the skin displacement check
    )
    return MemoryFootprint("verlet_list", per_atom, 0)


def linked_cell_footprint(
    cutoff: float,
    a: float = FE_LATTICE_CONSTANT,
) -> MemoryFootprint:
    """Linked cells: base record + next pointer + per-cell head pointer."""
    atoms_per_cell = BCC_ATOMS_PER_CELL * (cutoff / a) ** 3
    per_atom = (
        BASE_ATOM_RECORD
        + POINTER_BYTES  # `next` chain entry
        + POINTER_BYTES / atoms_per_cell  # amortized `head` pointer
    )
    return MemoryFootprint("linked_cell", per_atom, 0)


def max_atoms_in_memory(
    capacity_bytes: float,
    cutoff: float,
    a: float = FE_LATTICE_CONSTANT,
    skin: float = 0.4,
) -> dict[str, int]:
    """Atoms each structure fits into ``capacity_bytes`` (the §3 claim)."""
    return {
        "lattice_list": lattice_list_footprint(cutoff, a).max_atoms(capacity_bytes),
        "verlet_list": verlet_list_footprint(cutoff, skin, a).max_atoms(
            capacity_bytes
        ),
        "linked_cell": linked_cell_footprint(cutoff, a).max_atoms(capacity_bytes),
    }
