"""The paper's lattice neighbor list (§2.1.1, Figures 2-3).

For a metal under irradiation "most of the atoms stay very close to the
lattice point and only a few atoms would break the constrain and run away".
The structure exploits that:

* On-lattice atoms are stored in rank order; the neighbor *indexes* of any
  site follow from a static per-basis offset table
  (:meth:`repro.lattice.bcc.BCCLattice.offsets_within`) — no per-atom
  neighbor storage at all.
* An atom displaced beyond a threshold becomes a *run-away atom*: its row
  turns into a vacancy (negative ID, position = the lattice point) and the
  atom's record moves to a **linked list** hanging off the nearest lattice
  point.  This is the paper's improvement over the array storage of
  Hu et al. [11]: linked lists grow dynamically and keep run-away/run-away
  neighbor finding O(N) by locality ("the run-away atoms are linked to the
  nearest lattice point").
* A run-away atom that reaches a vacancy re-occupies it ("the information
  of the vacancy in the array is overlapped by the run-away atom").

Note on vectorization: the paper computes neighbor indexes on the fly to
save memory; we materialize them once as a NumPy index matrix because
per-element arithmetic is the expensive operation in Python.  The matrix
is shared, static, and derived — the *algorithmic* memory accounting of
:mod:`repro.md.neighbors.memory` follows the paper's storage scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.lattice.bcc import BCCLattice
from repro.lattice.box import Box
from repro.md.state import AtomState


@dataclass
class RunawayAtom:
    """An off-lattice atom linked to its nearest lattice point.

    Attributes
    ----------
    id:
        The atom's ID (its original site rank).
    x, v, f:
        Position, velocity, force (3-vectors).
    host:
        Row index (into the owning state's arrays) of the nearest lattice
        point — the entry whose linked list holds this atom.
    rho:
        Electron density at the atom.
    """

    id: int
    x: np.ndarray
    v: np.ndarray
    host: int
    f: np.ndarray = field(default_factory=lambda: np.zeros(3))
    rho: float = 0.0


class LatticeNeighborList:
    """Static-offset neighbor structure over a (sub)set of lattice sites.

    Parameters
    ----------
    lattice:
        The global BCC lattice.
    cutoff:
        Interaction cutoff (angstrom).  The periodic box must be at least
        twice the cutoff along every axis (minimum-image requirement).
    sites:
        Optional sorted array of global site ranks this instance covers
        (owned + ghost sites of a subdomain).  ``None`` means the full
        lattice with periodic neighbor wrapping.
    centrals:
        Optional row indices (into ``sites``) of the sites for which
        neighbor information is required (a subdomain's *owned* sites).
        Defaults to all rows.
    skin:
        Margin added to the cutoff when building the static offset table.
        Thermal displacement can bring a pair whose *lattice-point*
        separation slightly exceeds the cutoff inside interaction range;
        the skin keeps such pairs in the candidate set (interactions are
        always distance-filtered against the true cutoff downstream).

        Exactness contract: the candidate set is complete while every
        on-lattice atom stays within ``skin / 2`` of its lattice point.
        Rare thermal excursions beyond that can only drop pairs whose
        separation is already in the smoothly-switched-to-zero tail of
        the potential (the same tolerance every skin-based MD code
        accepts); displacements beyond the run-away threshold leave the
        on-lattice population entirely.
    """

    def __init__(
        self,
        lattice: BCCLattice,
        cutoff: float,
        sites: np.ndarray | None = None,
        centrals: np.ndarray | None = None,
        skin: float = 0.6,
    ) -> None:
        if cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        if skin < 0:
            raise ValueError(f"skin must be non-negative, got {skin}")
        self.lattice = lattice
        self.cutoff = float(cutoff)
        self.skin = float(skin)
        self.box = Box.for_lattice(lattice)
        reach = self.cutoff + self.skin
        if np.any(lattice.lengths < 2.0 * reach - 1e-9):
            raise ValueError(
                f"box {lattice.lengths} must be >= 2*(cutoff+skin)={2 * reach} "
                "on every axis, or a static offset and its periodic image "
                "would alias onto the same neighbor (double counting)"
            )
        if sites is None:
            self.sites = np.arange(lattice.nsites, dtype=np.int64)
            self._full = True
        else:
            self.sites = np.asarray(sites, dtype=np.int64)
            if np.any(np.diff(self.sites) <= 0):
                raise ValueError("sites must be strictly increasing")
            self._full = False
        if centrals is None:
            self.centrals = np.arange(len(self.sites), dtype=np.int64)
        else:
            self.centrals = np.asarray(centrals, dtype=np.int64)
        #: Linked lists of run-away atoms keyed by host row.
        self.hosts: dict[int, list[RunawayAtom]] = {}
        self._build_matrix()

    # ------------------------------------------------------------------
    # Static neighbor index matrix
    # ------------------------------------------------------------------
    def _build_matrix(self) -> None:
        """Materialize neighbor rows for every central site.

        ``matrix[c, m]`` is the row index of the m-th neighbor of central
        row ``self.centrals[c]``; ``valid[c, m]`` is False for padding
        (the two bases have different neighbor counts only in principle;
        for BCC they are equal, but padding keeps the code general).
        """
        offsets = self.lattice.offsets_within(self.cutoff + self.skin)
        central_ranks = self.sites[self.centrals]
        b, i, j, k = self.lattice.coords_of(central_ranks)
        m = offsets.max_count
        matrix_global = np.empty((len(central_ranks), m), dtype=np.int64)
        valid = np.zeros((len(central_ranks), m), dtype=bool)
        for basis in (0, 1):
            rows = offsets.for_basis(basis)
            sel = np.flatnonzero(b == basis)
            if len(sel) == 0:
                continue
            # Relative basis flip: 0 keeps the basis, 1 flips it.
            nb = np.where(rows[:, 0] == 0, basis, 1 - basis)
            gi = i[sel, None] + rows[None, :, 1]
            gj = j[sel, None] + rows[None, :, 2]
            gk = k[sel, None] + rows[None, :, 3]
            ranks = self.lattice.rank_of(
                np.broadcast_to(nb, gi.shape), gi, gj, gk
            )
            matrix_global[sel[:, None], np.arange(len(rows))[None, :]] = ranks
            valid[sel, : len(rows)] = True
        if self._full:
            self.matrix = matrix_global
        else:
            rows = np.searchsorted(self.sites, matrix_global)
            rows = np.clip(rows, 0, len(self.sites) - 1)
            found = self.sites[rows] == matrix_global
            if np.any(valid & ~found):
                raise ValueError(
                    "a central site's neighbor falls outside the provided "
                    "site set; the ghost shell is too thin for the cutoff"
                )
            self.matrix = rows
        self.valid = valid
        # Padding entries point at row 0; the valid mask excludes them.
        self.matrix[~self.valid] = 0

    @property
    def max_neighbors(self) -> int:
        """Width of the static neighbor matrix."""
        return self.matrix.shape[1]

    # ------------------------------------------------------------------
    # Pair enumeration (on-lattice atoms)
    # ------------------------------------------------------------------
    def lattice_pairs(self, state: AtomState) -> tuple[np.ndarray, np.ndarray]:
        """Half pair list (i, j) of interacting on-lattice atoms.

        Row indices into ``state``; each unordered pair appears once.
        Only meaningful when every site is a central (serial use).
        """
        occ = state.occupied
        c = self.centrals[:, None]
        nbr = self.matrix
        mask = self.valid & (nbr > c) & occ[nbr] & occ[self.centrals][:, None]
        ci, mi = np.nonzero(mask)
        return self.centrals[ci], nbr[ci, mi]

    def neighbor_rows(self, row: int) -> np.ndarray:
        """Row indices of the static neighbors of central row ``row``."""
        c = np.searchsorted(self.centrals, row)
        if c >= len(self.centrals) or self.centrals[c] != row:
            raise ValueError(f"row {row} is not a central site")
        return self.matrix[c][self.valid[c]]

    # ------------------------------------------------------------------
    # Run-away atom management (Figure 3)
    # ------------------------------------------------------------------
    @property
    def runaways(self) -> list[RunawayAtom]:
        """All run-away atoms, in deterministic host-then-insertion order."""
        out: list[RunawayAtom] = []
        for host in sorted(self.hosts):
            out.extend(self.hosts[host])
        return out

    @property
    def n_runaways(self) -> int:
        return sum(len(v) for v in self.hosts.values())

    def _nearest_row(self, x: np.ndarray) -> int:
        """Row index of the lattice point nearest to position ``x``."""
        rank = int(self.lattice.nearest_site(self.box.wrap(x)))
        if self._full:
            return rank
        row = int(np.searchsorted(self.sites, rank))
        if row >= len(self.sites) or self.sites[row] != rank:
            raise KeyError(f"nearest site {rank} not covered by this list")
        return row

    def _link(self, atom: RunawayAtom) -> None:
        self.hosts.setdefault(atom.host, []).append(atom)

    def _unlink(self, atom: RunawayAtom) -> None:
        bucket = self.hosts[atom.host]
        bucket.remove(atom)
        if not bucket:
            del self.hosts[atom.host]

    def update_runaways(
        self,
        state: AtomState,
        threshold: float,
        capture_radius: float | None = None,
    ) -> dict:
        """Detect new run-away atoms and re-home/capture existing ones.

        Parameters
        ----------
        state:
            The atom state to scan and mutate.
        threshold:
            Displacement from the lattice point beyond which an on-lattice
            atom is converted to a run-away (+ vacancy).
        capture_radius:
            A run-away atom within this distance of a *vacant* lattice
            point re-occupies it.  Defaults to ``threshold / 2``.

        Returns
        -------
        dict with counters: ``escaped``, ``captured``, ``relinked``.
        """
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        cap = threshold / 2.0 if capture_radius is None else capture_radius
        stats = {"escaped": 0, "captured": 0, "relinked": 0}

        # 1. New escapes: occupied rows displaced beyond the threshold.
        disp = state.displacement(self.box)
        for row in np.flatnonzero(disp > threshold):
            row = int(row)
            atom = RunawayAtom(
                id=int(state.ids[row]),
                x=state.x[row].copy(),
                v=state.v[row].copy(),
                host=row,
                f=state.f[row].copy(),
                rho=float(state.rho[row]),
            )
            state.make_vacancy(row)
            atom.host = self._nearest_row(atom.x)
            self._link(atom)
            stats["escaped"] += 1

        # 2. Existing run-aways: re-link to the now-nearest lattice point;
        #    capture into a vacancy when close enough.
        for atom in list(self.runaways):
            host = self._nearest_row(atom.x)
            if host != atom.host:
                self._unlink(atom)
                atom.host = host
                self._link(atom)
                stats["relinked"] += 1
            dist = float(
                np.linalg.norm(
                    self.box.minimum_image(atom.x - state.site_pos[atom.host])
                )
            )
            if state.ids[atom.host] < 0 and dist <= cap:
                self._unlink(atom)
                state.occupy(atom.host, atom.id, atom.x, atom.v)
                stats["captured"] += 1
        return stats

    # ------------------------------------------------------------------
    # Run-away interaction candidates
    # ------------------------------------------------------------------
    def _runaway_stencil(self, host_row: int) -> np.ndarray:
        """Candidate rows around a run-away atom's host lattice point.

        The paper says a run-away "checks the same neighbor atoms as the
        nearest lattice point it is linked to"; taken literally that
        misses partners near the cutoff edge, because the atom sits up to
        half the first-shell distance from its host (and another run-away
        partner adds the same slack on its side).  The stencil therefore
        reaches ``cutoff + 2 * link + skin``; duplicates from periodic
        aliasing are removed (safe: two images of one site can never both
        be within the cutoff of a point once the box exceeds 2*cutoff).
        """
        link = math.sqrt(3.0) / 4.0 * self.lattice.a
        reach = self.cutoff + 2.0 * link + self.skin
        rank = int(self.sites[host_row])
        neighbors = self.lattice.neighbor_ranks_within(rank, reach)
        if self._full:
            rows = neighbors
        else:
            idx = np.searchsorted(self.sites, neighbors)
            idx = np.minimum(idx, len(self.sites) - 1)
            rows = idx[self.sites[idx] == neighbors]
        return np.unique(np.append(rows, host_row))

    def runaway_candidates(self) -> list[tuple[RunawayAtom, np.ndarray]]:
        """(atom, candidate rows) per run-away atom.

        Candidate partners are distance-filtered against the true cutoff
        by the force kernel; this list only needs to be a superset.
        """
        return [
            (atom, self._runaway_stencil(atom.host)) for atom in self.runaways
        ]

    def runaway_pairs(self) -> list[tuple[RunawayAtom, RunawayAtom]]:
        """Unordered run-away/run-away pairs from neighboring linked lists.

        O(N) in the run-away count: each atom only scans the linked lists
        hanging off its host's static stencil.
        """
        runs = self.runaways
        order = {id(a): idx for idx, a in enumerate(runs)}
        pairs = []
        for atom in runs:
            for host in self._runaway_stencil(atom.host).tolist():
                for other in self.hosts.get(host, ()):
                    if order[id(other)] > order[id(atom)]:
                        pairs.append((atom, other))
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatticeNeighborList(sites={len(self.sites)}, "
            f"centrals={len(self.centrals)}, cutoff={self.cutoff}, "
            f"runaways={self.n_runaways})"
        )
