"""Verlet (LAMMPS-style) neighbor list baseline.

"For neighbor list, each atom maintains a list to store all the neighbor
atoms within a distance which is equal to the cutoff radius plus a skin
distance. Thus, the memory consumption of neighbor list is costly. The
neighbor atoms should be updated after several time steps." (§2.1.1)

This baseline operates on a flat array of particle positions (it knows
nothing about the lattice), exactly like a general-purpose MD code.
"""

from __future__ import annotations

import numpy as np

from repro.lattice.box import Box


class VerletNeighborList:
    """Skin-buffered neighbor list over a flat particle set.

    Parameters
    ----------
    box:
        Periodic box.
    cutoff:
        Interaction cutoff (angstrom).
    skin:
        Extra buffer distance; the list remains valid until some particle
        has moved more than ``skin / 2`` since the last build.
    """

    def __init__(self, box: Box, cutoff: float, skin: float = 0.4) -> None:
        if cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        if skin < 0:
            raise ValueError(f"skin must be non-negative, got {skin}")
        if np.any(box.lengths < 2.0 * (cutoff + skin)):
            raise ValueError(
                f"box {box.lengths} too small for cutoff+skin {cutoff + skin}"
            )
        self.box = box
        self.cutoff = float(cutoff)
        self.skin = float(skin)
        self._pairs_i: np.ndarray | None = None
        self._pairs_j: np.ndarray | None = None
        self._x_ref: np.ndarray | None = None
        self.builds = 0

    # ------------------------------------------------------------------
    def build(self, x: np.ndarray) -> None:
        """(Re)build the list for positions ``x`` of shape (n, 3).

        Uses an internal cell binning so construction is O(n), as real
        implementations do.
        """
        x = self.box.wrap(np.asarray(x, dtype=float))
        reach = self.cutoff + self.skin
        i_idx, j_idx = _cell_pairs(self.box, x, reach)
        if len(i_idx):
            d = self.box.minimum_image(x[j_idx] - x[i_idx])
            keep = np.einsum("ij,ij->i", d, d) <= reach * reach
            i_idx, j_idx = i_idx[keep], j_idx[keep]
        self._pairs_i = i_idx
        self._pairs_j = j_idx
        self._x_ref = x.copy()
        self.builds += 1

    def needs_rebuild(self, x: np.ndarray) -> bool:
        """Whether some particle moved more than skin/2 since last build."""
        if self._x_ref is None or len(x) != len(self._x_ref):
            return True
        d = self.box.minimum_image(np.asarray(x, dtype=float) - self._x_ref)
        return bool(np.max(np.einsum("ij,ij->i", d, d)) > (0.5 * self.skin) ** 2)

    def pairs(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Half pair list (i, j) within the cutoff for positions ``x``.

        Rebuilds automatically when the skin criterion is violated; between
        rebuilds, stale list entries are distance-filtered against the true
        cutoff (standard Verlet-list semantics).
        """
        x = np.asarray(x, dtype=float)
        if self.needs_rebuild(x):
            self.build(x)
        i_idx, j_idx = self._pairs_i, self._pairs_j
        if len(i_idx) == 0:
            return i_idx, j_idx
        d = self.box.minimum_image(x[j_idx] - x[i_idx])
        keep = np.einsum("ij,ij->i", d, d) <= self.cutoff * self.cutoff
        return i_idx[keep], j_idx[keep]

    @property
    def stored_pairs(self) -> int:
        """Pairs currently stored (cutoff + skin census)."""
        return 0 if self._pairs_i is None else len(self._pairs_i)


def _cell_pairs(box: Box, x: np.ndarray, reach: float):
    """All half pairs within ``reach`` via cell binning; O(n) for fixed density."""
    x = box.wrap(np.asarray(x, dtype=float))
    n = len(x)
    if n < 2:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    ncells = np.maximum((box.lengths // reach).astype(int), 1)
    cell_size = box.lengths / ncells
    coords = np.minimum((x // cell_size).astype(int), ncells - 1)
    flat = (coords[:, 0] * ncells[1] + coords[:, 1]) * ncells[2] + coords[:, 2]
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    # Start offset of every cell's particle run.
    boundaries = np.flatnonzero(np.diff(sorted_flat)) + 1
    starts = np.concatenate([[0], boundaries])
    cells = sorted_flat[starts]
    cell_to_run = {int(c): (int(s), int(e)) for c, s, e in zip(
        cells, starts, np.concatenate([boundaries, [n]]), strict=True
    )}
    shifts = [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
    ]
    pi: list[np.ndarray] = []
    pj: list[np.ndarray] = []
    for c_flat, (s, e) in cell_to_run.items():
        cz = c_flat % ncells[2]
        rest = c_flat // ncells[2]
        cy = rest % ncells[1]
        cx = rest // ncells[1]
        members = order[s:e]
        seen_neighbor_cells = set()
        for dx, dy, dz in shifts:
            nc = (
                ((cx + dx) % ncells[0]) * ncells[1] + ((cy + dy) % ncells[1])
            ) * ncells[2] + ((cz + dz) % ncells[2])
            nc = int(nc)
            # Small grids alias several shifts onto one cell; visit each
            # distinct neighbor cell once.
            if nc in seen_neighbor_cells:
                continue
            seen_neighbor_cells.add(nc)
            run = cell_to_run.get(nc)
            if run is None:
                continue
            others = order[run[0] : run[1]]
            a, b = np.meshgrid(members, others, indexing="ij")
            # The global a < b filter emits every unordered pair exactly
            # once: pair {p, q} with p < q survives only in the visit
            # whose member is p.
            keep = a < b
            pi.append(a[keep])
            pj.append(b[keep])
    if not pi:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(pi), np.concatenate(pj)
