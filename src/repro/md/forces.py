"""Vectorized EAM energy/force kernels.

The core computation of both MD and KMC (paper §2): a two-pass EAM
evaluation — density accumulation, embedding derivative, then pair +
embedding forces — over a half pair list produced by any of the neighbor
structures.  All hot loops are NumPy gather/scatter operations; the
scatters run through ``np.bincount(..., minlength=n)`` rather than
``np.add.at``, whose unbuffered ufunc path is the known slow scatter in
NumPy (an order of magnitude on large pair lists).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.md.neighbors.lattice_list import LatticeNeighborList
from repro.md.state import AtomState
from repro.potential.eam import EAMPotential


@dataclass
class PairTable:
    """A half pair list with precomputed geometry.

    ``i``/``j`` index a flat particle array; ``d`` is the minimum-image
    vector from i to j; ``r`` its length.  Pairs beyond the cutoff have
    already been dropped.
    """

    i: np.ndarray
    j: np.ndarray
    d: np.ndarray
    r: np.ndarray

    @classmethod
    def from_pairs(cls, x: np.ndarray, i, j, box, cutoff: float) -> "PairTable":
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        d = np.asarray(x)[j] - np.asarray(x)[i]
        if box is not None:
            d = box.minimum_image(d)
        r = np.linalg.norm(d, axis=-1) if len(i) else np.empty(0)
        keep = (r > 1e-12) & (r <= cutoff)
        return cls(i=i[keep], j=j[keep], d=d[keep], r=r[keep])

    def __len__(self) -> int:
        return len(self.i)


@dataclass
class EAMResult:
    """Outcome of one EAM evaluation over a flat particle array."""

    energy: float
    forces: np.ndarray
    rho: np.ndarray
    pair_energy: float
    embed_energy: float


def eam_evaluate(
    pot: EAMPotential,
    n: int,
    pairs: PairTable,
    active: np.ndarray | None = None,
) -> EAMResult:
    """Two-pass EAM evaluation over ``n`` particles and a half pair list.

    Parameters
    ----------
    pot:
        The potential (either table layout).
    n:
        Flat particle count; forces/rho arrays get this length.
    pairs:
        Interacting half pairs with geometry.
    active:
        Boolean mask of particles that exist (embedding energy is summed
        over these).  ``None`` means all.
    """
    if active is None:
        active = np.ones(n, dtype=bool)
    if len(pairs) == 0:
        return EAMResult(0.0, np.zeros((n, 3)), np.zeros(n), 0.0, 0.0)
    if kernels.selected() == "numba":
        payloads = kernels.eam_payloads(pot.tables)
        if payloads is not None:
            # Compiled path: bit-identical to the NumPy expressions below
            # by construction (same accumulation order, same pairwise
            # sums); the energy reductions stay NumPy-side in both paths.
            phi, rho, emb, forces = kernels.eam_fused(
                payloads, pairs.i, pairs.j, pairs.d, pairs.r, n
            )
            pair_energy = float(np.sum(phi))
            embed_energy = float(np.sum(emb[active]))
            return EAMResult(
                energy=pair_energy + embed_energy,
                forces=forces,
                rho=rho,
                pair_energy=pair_energy,
                embed_energy=embed_energy,
            )
    # Pass 1: pair energy and density accumulation.  bincount scatters:
    # one contiguous accumulation per endpoint array instead of the
    # element-wise np.add.at loop.
    phi, dphi = pot.tables.pair.value_and_derivative(pairs.r)
    fd, dfd = pot.tables.density.value_and_derivative(pairs.r)
    rho = np.bincount(pairs.i, weights=fd, minlength=n) + np.bincount(
        pairs.j, weights=fd, minlength=n
    )
    # Pass 2: embedding derivative closes the force expression.
    emb, demb = pot.tables.embedding.value_and_derivative(rho)
    coeff = (dphi + (demb[pairs.i] + demb[pairs.j]) * dfd) / pairs.r
    fvec = coeff[:, None] * pairs.d
    forces = np.empty((n, 3))
    for k in range(3):
        forces[:, k] = np.bincount(
            pairs.i, weights=fvec[:, k], minlength=n
        ) - np.bincount(pairs.j, weights=fvec[:, k], minlength=n)
    pair_energy = float(np.sum(phi))
    embed_energy = float(np.sum(emb[active]))
    return EAMResult(
        energy=pair_energy + embed_energy,
        forces=forces,
        rho=rho,
        pair_energy=pair_energy,
        embed_energy=embed_energy,
    )


def gather_particles(
    state: AtomState, nblist: LatticeNeighborList
) -> tuple[np.ndarray, np.ndarray, list]:
    """Flat particle array: occupied/vacancy rows first, run-aways appended.

    Returns ``(x_flat, active_mask, runaway_atoms)``; run-away atom ``k``
    is flat particle ``state.n + k``.
    """
    runs = nblist.runaways
    if runs:
        x = np.vstack([state.x, np.array([a.x for a in runs])])
    else:
        x = state.x
    active = np.concatenate(
        [state.occupied, np.ones(len(runs), dtype=bool)]
    )
    return x, active, runs


def build_pair_table(
    state: AtomState, nblist: LatticeNeighborList, pot: EAMPotential
) -> tuple[PairTable, np.ndarray, np.ndarray, list]:
    """All interacting half pairs of a state under the lattice list.

    Combines (1) on-lattice pairs from static index arithmetic, (2)
    run-away/lattice pairs from each run-away's host neighborhood, and
    (3) run-away/run-away pairs from adjacent linked lists.
    """
    x, active, runs = gather_particles(state, nblist)
    li, lj = nblist.lattice_pairs(state)
    pi = [li]
    pj = [lj]
    if runs:
        run_index = {id(a): state.n + k for k, a in enumerate(runs)}
        occ = state.occupied
        for atom, rows in nblist.runaway_candidates():
            rows = rows[occ[rows]]
            if len(rows):
                pi.append(np.full(len(rows), run_index[id(atom)], dtype=np.int64))
                pj.append(rows.astype(np.int64))
        rr = nblist.runaway_pairs()
        if rr:
            pi.append(np.asarray([run_index[id(a)] for a, _b in rr], dtype=np.int64))
            pj.append(np.asarray([run_index[id(b)] for _a, b in rr], dtype=np.int64))
    i = np.concatenate(pi)
    j = np.concatenate(pj)
    table = PairTable.from_pairs(x, i, j, nblist.box, pot.cutoff)
    return table, x, active, runs


def compute_energy_forces(
    pot: EAMPotential, state: AtomState, nblist: LatticeNeighborList
) -> float:
    """Full EAM evaluation; writes forces and rho into ``state`` in place.

    Run-away atoms get their ``f``/``rho`` fields updated too.  Returns
    the total potential energy (eV).
    """
    table, x, active, runs = build_pair_table(state, nblist, pot)
    result = eam_evaluate(pot, len(x), table, active)
    state.f[:] = result.forces[: state.n]
    state.f[~state.occupied] = 0.0
    state.rho[:] = result.rho[: state.n]
    state.rho[~state.occupied] = 0.0
    for k, atom in enumerate(runs):
        atom.f = result.forces[state.n + k].copy()
        atom.rho = float(result.rho[state.n + k])
    return result.energy


def star_geometry(
    x: np.ndarray,
    occupied: np.ndarray,
    centrals: np.ndarray,
    matrix: np.ndarray,
    valid: np.ndarray,
    box,
    cutoff: float,
):
    """Distances from each central row to its static neighbors.

    Returns ``(d, r, mask)`` with shapes ``(C, m, 3)``, ``(C, m)``,
    ``(C, m)``: the displacement vectors, distances, and the mask of
    genuine interactions (valid slot, both occupied, within cutoff).
    Used by the parallel engine, where each owned central accumulates its
    full interaction star (ghost neighbors included).
    """
    xc = x[centrals]
    xn = x[matrix]
    d = xn - xc[:, None, :]
    if box is not None:
        d = box.minimum_image(d)
    r = np.linalg.norm(d, axis=2)
    mask = (
        valid
        & occupied[matrix]
        & occupied[centrals][:, None]
        & (r > 1e-12)
        & (r <= cutoff)
    )
    return d, r, mask


def star_density(
    pot: EAMPotential,
    x: np.ndarray,
    occupied: np.ndarray,
    centrals: np.ndarray,
    matrix: np.ndarray,
    valid: np.ndarray,
    box,
) -> tuple[np.ndarray, float]:
    """Density pass of the parallel kernel.

    Returns ``(rho_centrals, local_pair_energy)``; the pair energy carries
    the EAM 1/2 factor, so summing it over ranks gives the global pair
    term exactly (every bond is seen from both ends).
    """
    _d, r, mask = star_geometry(x, occupied, centrals, matrix, valid, box, pot.cutoff)
    rsafe = np.where(mask, r, pot.cutoff)
    rho_c = np.sum(pot.tables.density(rsafe) * mask, axis=1)
    pair_e = 0.5 * float(np.sum(pot.tables.pair(rsafe) * mask))
    return rho_c, pair_e


def star_forces(
    pot: EAMPotential,
    x: np.ndarray,
    occupied: np.ndarray,
    rho: np.ndarray,
    centrals: np.ndarray,
    matrix: np.ndarray,
    valid: np.ndarray,
    box,
) -> np.ndarray:
    """Force pass of the parallel kernel; forces on the central rows only.

    ``rho`` must hold *converged* densities for every row the matrix can
    touch — ghosts included, which is why the engine exchanges densities
    between the two passes.
    """
    d, r, mask = star_geometry(x, occupied, centrals, matrix, valid, box, pot.cutoff)
    rsafe = np.where(mask, r, pot.cutoff)
    dphi = pot.tables.pair.derivative(rsafe)
    dfd = pot.tables.density.derivative(rsafe)
    demb = pot.tables.embedding.derivative(rho)
    coeff = (dphi + (demb[centrals][:, None] + demb[matrix]) * dfd) / rsafe
    coeff = np.where(mask, coeff, 0.0)
    return np.einsum("cm,cmk->ck", coeff, d)


def compute_energy_forces_pairs(
    pot: EAMPotential,
    x: np.ndarray,
    i: np.ndarray,
    j: np.ndarray,
    box,
) -> EAMResult:
    """EAM evaluation from an externally produced pair list.

    Used with the baseline neighbor structures (Verlet / linked cell) and
    by the cross-structure equivalence tests.
    """
    table = PairTable.from_pairs(x, i, j, box, pot.cutoff)
    return eam_evaluate(pot, len(x), table)
