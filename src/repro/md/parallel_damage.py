"""Parallel MD with run-away atoms: the full §2.1.1 exchange protocol.

:class:`~repro.md.engine.ParallelMD` executes the paper's parallel
structure on perfect lattices; this module adds the damage machinery so
cascades run distributed:

* vacancies propagate through the static ghost exchange ("the lattice
  points (either an atom or a vacancy) in the ghost region is packed
  (unpacked) and sent (received) according to the indexes in the array");
* run-away atoms migrate between ranks and appear as ghosts — "For the
  run-away atoms, if they move into the subdomain or the ghost region of
  the neighbor processes, we pack their information and send it to the
  corresponding neighbor processes."

Per step the protocol is:

1. half-kick + drift owned atoms and owned run-aways;
2. every ``runaway_check_interval`` steps: escape/capture/relink
   bookkeeping, then *migration* — a run-away whose nearest lattice point
   is owned elsewhere is packed and shipped to its new owner;
3. static ghost exchange of positions + occupancy (IDs);
4. run-away ghost broadcast: copies of owned run-aways hosted in a
   neighbor's interest region travel with their positions;
5. density pass (lattice stars + run-away contributions), then the
   second exchange phase ships densities — for lattice sites through the
   static pattern, for run-aways with refreshed ghost copies;
6. force pass, second half-kick.

The result is bit-compatible with the serial engine (asserted by tests):
same trajectories, same vacancy inventory, same run-away population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FM2A
from repro.lattice.bcc import BCCLattice
from repro.lattice.box import Box
from repro.lattice.domain import DIRECTIONS, DomainDecomposition, choose_grid
from repro.md.engine import MDConfig
from repro.md.forces import star_density, star_forces
from repro.md.ghost import GhostExchanger
from repro.md.neighbors.lattice_list import LatticeNeighborList, RunawayAtom
from repro.md.state import AtomState
from repro.md.thermostat import maxwell_boltzmann_velocities
from repro.potential.eam import EAMPotential
from repro.potential.fe import make_fe_potential
from repro.runtime.simmpi import World

TAG_X = 0
TAG_RHO = 100
TAG_RUNAWAY_MIGRATE = 300
TAG_RUNAWAY_GHOST_X = 400
TAG_RUNAWAY_GHOST_RHO = 500


@dataclass
class ParallelDamageResult:
    """Global outcome of a distributed damage run."""

    positions: np.ndarray
    velocities: np.ndarray
    vacancy_ranks: np.ndarray
    runaway_ids: np.ndarray
    runaway_positions: np.ndarray
    comm_stats: dict
    nranks: int


def _pack_runaways(atoms: list[RunawayAtom], sites: np.ndarray):
    """Wire format: (ids, host global ranks, x, v) arrays."""
    return (
        np.array([a.id for a in atoms], dtype=np.int64),
        sites[[a.host for a in atoms]].astype(np.int64),
        np.array([a.x for a in atoms]).reshape(-1, 3),
        np.array([a.v for a in atoms]).reshape(-1, 3),
    )


class ParallelDamageMD:
    """Domain-decomposed MD with vacancies and run-away atoms.

    Parameters mirror :class:`~repro.md.engine.ParallelMD`, plus the
    damage knobs of the serial engine.
    """

    def __init__(
        self,
        lattice: BCCLattice,
        potential: EAMPotential | None = None,
        config: MDConfig | None = None,
        grid: tuple[int, int, int] | None = None,
        nranks: int | None = None,
        network=None,
        backend: str | None = None,
        workers: int | None = None,
    ) -> None:
        self.lattice = lattice
        self.config = config or MDConfig()
        self.potential = potential or make_fe_potential(
            layout=self.config.table_layout
        )
        if grid is None:
            if nranks is None:
                raise ValueError("provide either grid or nranks")
            grid = choose_grid(nranks, (lattice.nx, lattice.ny, lattice.nz))
        self.decomp = DomainDecomposition(lattice, grid)
        self.box = Box.for_lattice(lattice)
        self.network = network
        self.backend = backend
        self.workers = workers

    @property
    def nranks(self) -> int:
        return self.decomp.nprocs

    def _initial_velocities(self) -> np.ndarray:
        state = AtomState.perfect(self.lattice)
        rng = np.random.default_rng(self.config.seed)
        maxwell_boltzmann_velocities(state, self.config.temperature, rng)
        return state.v

    def run(
        self,
        nsteps: int,
        dt: float | None = None,
        displacement_threshold: float = 1.2,
        runaway_check_interval: int = 5,
        pka: tuple[int, np.ndarray] | None = None,
    ) -> ParallelDamageResult:
        """Run a distributed damage simulation.

        ``pka`` optionally injects a primary knock-on atom: a (global
        site rank, velocity vector) pair applied after thermalization.
        """
        if nsteps < 1:
            raise ValueError(f"nsteps must be >= 1, got {nsteps}")
        dt = dt if dt is not None else self.config.dt
        v_global = self._initial_velocities()
        if pka is not None:
            v_global = v_global.copy()
            v_global[int(pka[0])] = np.asarray(pka[1], dtype=float)
        lattice = self.lattice
        pot = self.potential
        box = self.box
        decomp = self.decomp
        # One extra ghost cell beyond the MD cutoff: a run-away atom sits
        # up to half a first-shell from its host, so its interaction
        # sphere (and its ghost-copy relevance) reaches that much past
        # the lattice stencil.
        width = decomp.ghost_width_cells(pot.cutoff) + 1

        def rank_main(comm):
            sub = decomp.subdomain(comm.rank)
            owned = sub.owned_site_ranks(lattice)
            ghosts = sub.all_ghost_site_ranks(lattice, width)
            sites = np.union1d(owned, ghosts)
            central_rows = np.searchsorted(sites, owned)
            own_mask = np.zeros(len(sites), dtype=bool)
            own_mask[central_rows] = True
            state = AtomState.for_sites(lattice, sites)
            state.v[:] = v_global[sites]
            nbl = LatticeNeighborList(
                lattice, pot.cutoff, sites=sites, centrals=central_rows
            )
            ex = GhostExchanger(decomp, comm.rank, sites, width)
            # Ranks my ghost region could host run-aways for / from.
            neighbor_ranks = sorted(
                {decomp.neighbor_rank(comm.rank, d) for d in DIRECTIONS}
                - {comm.rank}
            )
            interest: dict[int, set] = {}
            for n in neighbor_ranks:
                nsub = decomp.subdomain(n)
                interest[n] = set(
                    np.union1d(
                        nsub.owned_site_ranks(lattice),
                        nsub.all_ghost_site_ranks(lattice, width),
                    ).tolist()
                )
            fm = FM2A / state.mass
            forces = np.zeros((len(sites), 3))
            ids_f = np.empty(len(sites), dtype=float)

            def owned_runaways() -> list[RunawayAtom]:
                return nbl.runaways

            def exchange_ids_and_x() -> None:
                ids_f[:] = state.ids
                ex.exchange(comm, TAG_X, [state.x, ids_f])
                state.ids[:] = ids_f.astype(np.int64)

            def migrate_runaways() -> None:
                """Ship run-aways whose nearest site belongs elsewhere."""
                outgoing: dict[int, list[RunawayAtom]] = {n: [] for n in neighbor_ranks}
                for atom in list(owned_runaways()):
                    owner = decomp.owner_of_site(int(sites[atom.host]))
                    if owner != comm.rank:
                        nbl._unlink(atom)
                        outgoing[owner].append(atom)
                for n in neighbor_ranks:
                    comm.send(
                        n,
                        TAG_RUNAWAY_MIGRATE,
                        _pack_runaways(outgoing[n], sites),
                    )
                for n in neighbor_ranks:
                    _s, _t, payload = comm.recv(
                        source=n, tag=TAG_RUNAWAY_MIGRATE
                    )
                    ids, hosts, xs, vs = payload
                    for k in range(len(ids)):
                        host_row = int(np.searchsorted(sites, hosts[k]))
                        atom = RunawayAtom(
                            id=int(ids[k]),
                            x=xs[k].copy(),
                            v=vs[k].copy(),
                            host=host_row,
                        )
                        nbl._link(atom)

            def broadcast_ghost_runaways() -> list[RunawayAtom]:
                """Copies of owned run-aways for neighbors that see them."""
                for n in neighbor_ranks:
                    copies = [
                        a
                        for a in owned_runaways()
                        if int(sites[a.host]) in interest[n]
                    ]
                    comm.send(
                        n, TAG_RUNAWAY_GHOST_X, _pack_runaways(copies, sites)
                    )
                ghosts_in: list[RunawayAtom] = []
                for n in neighbor_ranks:
                    _s, _t, payload = comm.recv(
                        source=n, tag=TAG_RUNAWAY_GHOST_X
                    )
                    ids, hosts, xs, vs = payload
                    for k in range(len(ids)):
                        idx = int(np.searchsorted(sites, hosts[k]))
                        if idx >= len(sites) or sites[idx] != hosts[k]:
                            continue  # outside my coverage
                        ghosts_in.append(
                            RunawayAtom(
                                id=int(ids[k]),
                                x=xs[k].copy(),
                                v=vs[k].copy(),
                                host=idx,
                            )
                        )
                return ghosts_in

            def exchange_runaway_rho(
                ghost_runs: list[RunawayAtom],
            ) -> None:
                """Refresh ghost run-away densities from their owners."""
                for n in neighbor_ranks:
                    mine = [
                        a
                        for a in owned_runaways()
                        if int(sites[a.host]) in interest[n]
                    ]
                    comm.send(
                        n,
                        TAG_RUNAWAY_GHOST_RHO,
                        (
                            np.array([a.id for a in mine], dtype=np.int64),
                            np.array([a.rho for a in mine]),
                        ),
                    )
                rho_by_id: dict[int, float] = {}
                for n in neighbor_ranks:
                    _s, _t, (ids, rhos) = comm.recv(
                        source=n, tag=TAG_RUNAWAY_GHOST_RHO
                    )
                    for k in range(len(ids)):
                        rho_by_id[int(ids[k])] = float(rhos[k])
                for atom in ghost_runs:
                    if atom.id in rho_by_id:
                        atom.rho = rho_by_id[atom.id]

            def runaway_star(
                atom: RunawayAtom, occ: np.ndarray
            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
                """(rows, d, r) of the atom's occupied lattice partners."""
                rows = nbl._runaway_stencil(atom.host)
                rows = rows[occ[rows]]
                d = box.minimum_image(state.x[rows] - atom.x)
                r = np.linalg.norm(d, axis=1)
                keep = (r > 1e-12) & (r <= pot.cutoff)
                return rows[keep], d[keep], r[keep]

            def compute_step(
                own_list: list[RunawayAtom], ghost_list: list[RunawayAtom]
            ) -> None:
                """Two-pass EAM with run-away participation."""
                all_runs = own_list + ghost_list
                occ = state.occupied
                # --- density pass -------------------------------------
                rho_c, _pair_e = star_density(
                    pot, state.x, occ, central_rows, nbl.matrix, nbl.valid, box
                )
                state.rho[:] = 0.0
                state.rho[central_rows] = rho_c
                run_partners = []
                for atom in all_runs:
                    rows, d, r = runaway_star(atom, occ)
                    fd = pot.fdens(r)
                    state.rho[rows] += fd
                    atom.rho = float(np.sum(fd))
                    run_partners.append((rows, d, r))
                # run-away / run-away density contributions
                rr_pairs = _runaway_runaway_pairs(all_runs, box, pot.cutoff)
                for a, b, _d, r in rr_pairs:
                    fd = float(pot.fdens(r))
                    a.rho += fd
                    b.rho += fd
                # --- density reconciliation ---------------------------
                ex.exchange(comm, TAG_RHO, [state.rho])
                exchange_runaway_rho(ghost_list)
                # --- force pass ----------------------------------------
                forces[:] = 0.0
                forces[central_rows] = star_forces(
                    pot,
                    state.x,
                    occ,
                    state.rho,
                    central_rows,
                    nbl.matrix,
                    nbl.valid,
                    box,
                )
                demb_sites = pot.dembed(state.rho)
                for atom, (rows, d, r) in zip(all_runs, run_partners, strict=True):
                    demb_a = float(pot.dembed(atom.rho))
                    coeff = (
                        pot.dphi(r) + (demb_a + demb_sites[rows]) * pot.dfdens(r)
                    ) / r
                    # force on the run-away along +d (d = site - atom)...
                    atom.f = np.einsum("m,mk->k", coeff, d)
                    # ...and the reaction on the lattice sites.
                    np.add.at(forces, rows, -coeff[:, None] * d)
                for a, b, d, r in rr_pairs:
                    demb_a = float(pot.dembed(a.rho))
                    demb_b = float(pot.dembed(b.rho))
                    coeff = float(
                        (pot.dphi(r) + (demb_a + demb_b) * pot.dfdens(r)) / r
                    )
                    a.f = a.f + coeff * d
                    b.f = b.f - coeff * d

            # ----------------------------------------------------------
            # main loop
            # ----------------------------------------------------------
            exchange_ids_and_x()
            compute_step(owned_runaways(), broadcast_ghost_runaways())
            for step in range(nsteps):
                own = owned_runaways()
                state.v[central_rows] += 0.5 * dt * fm * forces[central_rows]
                vac = ~state.occupied
                state.v[central_rows[vac[central_rows]]] = 0.0
                state.x[central_rows] += dt * state.v[central_rows]
                state.x[central_rows] = box.wrap(state.x[central_rows])
                for atom in own:
                    atom.v = atom.v + 0.5 * dt * fm * atom.f
                    atom.x = box.wrap(atom.x + dt * atom.v)
                if step % runaway_check_interval == 0:
                    # Escape + relink over owned rows (ghosts parked),
                    # then ownership migration, then the capture pass —
                    # each capture decision is taken by the vacancy's
                    # owner, after the run-away has reached it.
                    _escape_and_relink(
                        state, nbl, own_mask, displacement_threshold
                    )
                    migrate_runaways()
                    _capture_pass(state, nbl, displacement_threshold)
                exchange_ids_and_x()
                compute_step(owned_runaways(), broadcast_ghost_runaways())
                own = owned_runaways()
                state.v[central_rows] += 0.5 * dt * fm * forces[central_rows]
                for atom in own:
                    atom.v = atom.v + 0.5 * dt * fm * atom.f
            runs = owned_runaways()
            return {
                "owned": owned,
                "x": state.x[central_rows].copy(),
                "v": state.v[central_rows].copy(),
                "ids": state.ids[central_rows].copy(),
                "runaway_ids": np.array([a.id for a in runs], dtype=np.int64),
                "runaway_x": np.array([a.x for a in runs]).reshape(-1, 3),
            }

        world = World(
            self.nranks,
            network=self.network,
            backend=self.backend,
            workers=self.workers,
        )
        results = world.run(rank_main)
        nsites = lattice.nsites
        x = np.zeros((nsites, 3))
        v = np.zeros((nsites, 3))
        ids = np.zeros(nsites, dtype=np.int64)
        run_ids = []
        run_x = []
        for res in results:
            x[res["owned"]] = res["x"]
            v[res["owned"]] = res["v"]
            ids[res["owned"]] = res["ids"]
            run_ids.append(res["runaway_ids"])
            run_x.append(res["runaway_x"])
        run_ids = np.concatenate(run_ids)
        run_x = (
            np.concatenate(run_x) if len(run_ids) else np.empty((0, 3))
        )
        order = np.argsort(run_ids)
        return ParallelDamageResult(
            positions=x,
            velocities=v,
            vacancy_ranks=np.flatnonzero(ids < 0),
            runaway_ids=run_ids[order],
            runaway_positions=run_x[order],
            comm_stats=world.stats.snapshot(),
            nranks=self.nranks,
        )


def _escape_and_relink(
    state: AtomState,
    nbl: LatticeNeighborList,
    own_mask: np.ndarray,
    threshold: float,
) -> None:
    """Escape detection + relinking restricted to owned rows, no capture.

    Ghost rows mirror remote atoms; their owners do their bookkeeping.
    Temporarily parking ghost rows on their lattice points keeps the
    shared scan (which is global over the local state) from
    double-detecting, and a zero capture radius defers captures to the
    owner-side pass after migration.
    """
    saved_x = state.x.copy()
    saved_ids = state.ids.copy()
    ghost_rows = np.flatnonzero(~own_mask)
    state.x[ghost_rows] = state.site_pos[ghost_rows]
    state.ids[ghost_rows] = np.abs(state.ids[ghost_rows])
    try:
        nbl.update_runaways(state, threshold, capture_radius=0.0)
    finally:
        state.x[ghost_rows] = saved_x[ghost_rows]
        state.ids[ghost_rows] = saved_ids[ghost_rows]


def _capture_pass(
    state: AtomState, nbl: LatticeNeighborList, threshold: float
) -> None:
    """Owner-side capture: a run-away on a vacant host re-occupies it.

    Uses the serial engine's capture radius (threshold / 2) and the same
    host-sorted processing order, so trajectories match the serial
    bookkeeping exactly.
    """
    cap = threshold / 2.0
    for atom in list(nbl.runaways):
        dist = float(
            np.linalg.norm(
                nbl.box.minimum_image(atom.x - state.site_pos[atom.host])
            )
        )
        if state.ids[atom.host] < 0 and dist <= cap:
            nbl._unlink(atom)
            state.occupy(atom.host, atom.id, atom.x, atom.v)


def _runaway_runaway_pairs(
    runs: list[RunawayAtom], box: Box, cutoff: float
) -> list[tuple[RunawayAtom, RunawayAtom, np.ndarray, float]]:
    """All interacting run-away pairs in a (small) population."""
    out = []
    for i, a in enumerate(runs):
        for b in runs[i + 1 :]:
            d = box.minimum_image(b.x - a.x)
            r = float(np.linalg.norm(d))
            if 1e-12 < r <= cutoff:
                out.append((a, b, d, r))
    return out
