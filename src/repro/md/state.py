"""Atom state arrays in lattice-rank storage order.

Following Figure 2 of the paper, "the information of the atoms, such as
coordinates, velocity, force, and electron cloud density, is sequentially
stored in a array in the order of the atoms ranks".  :class:`AtomState`
is that array: one row per lattice site, holding the atom currently bound
to the site — or a vacancy marker ("ID is modified to a negative number to
indicate this is a vacancy", Figure 3), in which case the row's position
records the vacancy's lattice-point coordinates.

Run-away atoms live *outside* these arrays, in the linked lists of
:class:`~repro.md.neighbors.lattice_list.LatticeNeighborList`.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FE_MASS, KB_EV, MVV2E

#: Sentinel ID marking a vacancy row.
VACANCY_ID: int = -1


class AtomState:
    """Per-site atom data in lattice-rank order.

    Attributes
    ----------
    ids:
        Atom IDs, ``(n,)`` int64; negative entries mark vacancies.
    x, v, f:
        Positions, velocities, forces, each ``(n, 3)`` float64.
    rho:
        Electron densities, ``(n,)`` float64.
    site_pos:
        Reference lattice-point coordinates of each row, ``(n, 3)``
        (never changes; the anchor the paper's indexing relies on).
    mass:
        Atomic mass in amu (single-species systems).
    """

    def __init__(
        self,
        ids: np.ndarray,
        x: np.ndarray,
        site_pos: np.ndarray,
        mass: float = FE_MASS,
    ) -> None:
        ids = np.asarray(ids, dtype=np.int64)
        x = np.asarray(x, dtype=float)
        site_pos = np.asarray(site_pos, dtype=float)
        n = len(ids)
        if x.shape != (n, 3) or site_pos.shape != (n, 3):
            raise ValueError(
                f"shape mismatch: ids {ids.shape}, x {x.shape}, "
                f"site_pos {site_pos.shape}"
            )
        if mass <= 0:
            raise ValueError(f"mass must be positive, got {mass}")
        self.ids = ids
        self.x = x
        self.v = np.zeros((n, 3))
        self.f = np.zeros((n, 3))
        self.rho = np.zeros(n)
        self.site_pos = site_pos
        self.mass = float(mass)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def perfect(cls, lattice, mass: float = FE_MASS) -> "AtomState":
        """Every site of ``lattice`` occupied by an atom at rest."""
        pos = lattice.all_positions()
        return cls(
            ids=np.arange(lattice.nsites, dtype=np.int64),
            x=pos.copy(),
            site_pos=pos,
            mass=mass,
        )

    @classmethod
    def for_sites(cls, lattice, site_ranks: np.ndarray, mass: float = FE_MASS) -> "AtomState":
        """State covering only the given global site ranks (subdomain use)."""
        site_ranks = np.asarray(site_ranks, dtype=np.int64)
        pos = lattice.position_of(site_ranks)
        return cls(ids=site_ranks.copy(), x=pos.copy(), site_pos=pos, mass=mass)

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of rows (lattice sites tracked)."""
        return len(self.ids)

    @property
    def occupied(self) -> np.ndarray:
        """Boolean mask of rows currently holding an atom."""
        return self.ids >= 0

    @property
    def natoms(self) -> int:
        """Number of on-lattice atoms (run-away atoms not included)."""
        return int(np.count_nonzero(self.occupied))

    @property
    def nvacancies(self) -> int:
        return self.n - self.natoms

    def vacancy_rows(self) -> np.ndarray:
        """Row indices of vacancy entries."""
        return np.flatnonzero(~self.occupied)

    def make_vacancy(self, row: int) -> None:
        """Turn ``row`` into a vacancy anchored at its lattice point."""
        self.ids[row] = VACANCY_ID
        self.x[row] = self.site_pos[row]
        self.v[row] = 0.0
        self.f[row] = 0.0
        self.rho[row] = 0.0

    def occupy(self, row: int, atom_id: int, x, v) -> None:
        """Fill a vacancy row with an atom ("overlapped by the run-away atom")."""
        if self.ids[row] >= 0:
            raise ValueError(f"row {row} is already occupied by atom {self.ids[row]}")
        if atom_id < 0:
            raise ValueError(f"atom id must be non-negative, got {atom_id}")
        self.ids[row] = atom_id
        self.x[row] = x
        self.v[row] = v
        self.f[row] = 0.0

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def displacement(self, box=None) -> np.ndarray:
        """Distance of each atom from its lattice point (0 for vacancies)."""
        d = self.x - self.site_pos
        if box is not None:
            d = box.minimum_image(d)
        out = np.linalg.norm(d, axis=1)
        out[~self.occupied] = 0.0
        return out

    def kinetic_energy(self) -> float:
        """Total kinetic energy of on-lattice atoms (eV)."""
        occ = self.occupied
        return float(
            0.5 * self.mass * MVV2E * np.sum(self.v[occ] ** 2)
        )

    def temperature(self) -> float:
        """Instantaneous temperature (K) from equipartition."""
        n = self.natoms
        if n == 0:
            return 0.0
        return 2.0 * self.kinetic_energy() / (3.0 * n * KB_EV)

    def momentum(self) -> np.ndarray:
        """Total momentum of on-lattice atoms (amu * A/ps)."""
        occ = self.occupied
        return self.mass * np.sum(self.v[occ], axis=0)

    def zero_momentum(self) -> None:
        """Remove center-of-mass drift from occupied rows."""
        occ = self.occupied
        n = int(np.count_nonzero(occ))
        if n:
            self.v[occ] -= np.mean(self.v[occ], axis=0)

    def copy(self) -> "AtomState":
        """Deep copy of all state arrays."""
        out = AtomState(self.ids.copy(), self.x.copy(), self.site_pos, self.mass)
        out.v = self.v.copy()
        out.f = self.f.copy()
        out.rho = self.rho.copy()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AtomState(n={self.n}, atoms={self.natoms}, "
            f"vacancies={self.nvacancies})"
        )
