"""Molecular Dynamics engine (paper §2.1).

Simulates defect generation in BCC iron under irradiation: EAM forces over
a short-range cutoff, velocity Verlet integration, primary-knock-on-atom
cascades, and vacancy formation tracked through the paper's *lattice
neighbor list* data structure.

Three interchangeable neighbor structures are provided so the paper's
memory/compute comparison is reproducible:

* :class:`~repro.md.neighbors.lattice_list.LatticeNeighborList` — the
  paper's structure (static index arithmetic + linked run-away atoms).
* :class:`~repro.md.neighbors.verlet_list.VerletNeighborList` — the
  LAMMPS-style baseline.
* :class:`~repro.md.neighbors.linked_cell.LinkedCellList` — the IMD-style
  baseline.
"""

from repro.md.state import AtomState, VACANCY_ID
from repro.md.neighbors import (
    LatticeNeighborList,
    VerletNeighborList,
    LinkedCellList,
)
from repro.md.forces import compute_energy_forces, PairTable
from repro.md.integrator import VelocityVerlet
from repro.md.thermostat import (
    maxwell_boltzmann_velocities,
    berendsen_rescale,
    instantaneous_temperature,
)
from repro.md.cascade import CascadeConfig, run_cascade, insert_pka
from repro.md.engine import MDEngine, MDConfig, ParallelMD
from repro.md.parallel_damage import ParallelDamageMD, ParallelDamageResult

__all__ = [
    "AtomState",
    "CascadeConfig",
    "LatticeNeighborList",
    "LinkedCellList",
    "MDConfig",
    "MDEngine",
    "PairTable",
    "ParallelDamageMD",
    "ParallelDamageResult",
    "ParallelMD",
    "VACANCY_ID",
    "VelocityVerlet",
    "VerletNeighborList",
    "berendsen_rescale",
    "compute_energy_forces",
    "insert_pka",
    "instantaneous_temperature",
    "maxwell_boltzmann_velocities",
    "run_cascade",
]
