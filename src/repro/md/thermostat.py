"""Temperature initialization and control.

The paper equilibrates the Fe lattice at 600 K before the cascade.  We
provide Maxwell-Boltzmann velocity initialization and a Berendsen
velocity-rescaling thermostat — the minimum machinery to hold a target
temperature during equilibration.
"""

from __future__ import annotations

import numpy as np

from repro.constants import thermal_velocity_sigma
from repro.md.state import AtomState


def maxwell_boltzmann_velocities(
    state: AtomState, temperature: float, rng: np.random.Generator
) -> None:
    """Draw velocities for occupied rows at ``temperature`` (K), drift-free."""
    if temperature < 0:
        raise ValueError(f"temperature must be non-negative, got {temperature}")
    occ = state.occupied
    n = int(np.count_nonzero(occ))
    if n == 0:
        return
    sigma = thermal_velocity_sigma(temperature, state.mass)
    state.v[occ] = rng.normal(0.0, sigma, size=(n, 3))
    state.zero_momentum()
    if temperature > 0 and n > 1:
        # Rescale to hit the target exactly (finite-sample correction).
        current = state.temperature()
        if current > 0:
            state.v[occ] *= np.sqrt(temperature / current)


def instantaneous_temperature(state: AtomState) -> float:
    """Equipartition temperature of the on-lattice atoms (K)."""
    return state.temperature()


def berendsen_rescale(
    state: AtomState,
    target: float,
    dt: float,
    tau: float = 0.1,
) -> float:
    """One Berendsen thermostat application; returns the scale factor.

    ``lambda^2 = 1 + (dt/tau) * (T_target/T - 1)``; velocities of occupied
    rows are scaled by ``lambda``.  A no-op when the system is cold (T=0).
    """
    if target < 0:
        raise ValueError(f"target temperature must be non-negative, got {target}")
    if tau <= 0 or dt <= 0:
        raise ValueError("dt and tau must be positive")
    current = state.temperature()
    if current <= 0:
        return 1.0
    lam = float(np.sqrt(max(1.0 + (dt / tau) * (target / current - 1.0), 0.0)))
    state.v[state.occupied] *= lam
    return lam
