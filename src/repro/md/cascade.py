"""Cascade collision: primary knock-on atom (PKA) events.

The paper's MD phase "simulates the defect generation caused by cascade
collision" under irradiation.  Physically, an incident particle transfers
a large kinetic energy to one lattice atom — the primary knock-on atom —
which displaces neighbors in a collision cascade, leaving vacancies and
interstitial (run-away) atoms behind.

This module implements the PKA insertion and a driver that runs the
cascade with the serial MD engine, returning the damage inventory the KMC
stage consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import MVV2E
from repro.md.state import AtomState


@dataclass(frozen=True)
class CascadeConfig:
    """Parameters of a cascade simulation.

    Attributes
    ----------
    pka_energy:
        Kinetic energy given to the knock-on atom, in eV.  (Real
        irradiation cascades use keV-scale PKAs over millions of atoms;
        at toy scale ~1e2 eV produces the same artifact — a handful of
        Frenkel pairs.)
    pka_direction:
        Initial direction of the PKA (need not be normalized).
    pka_site:
        Site row receiving the kick; ``None`` picks the center of the box.
    nsteps:
        MD steps to run after insertion.
    dt:
        Time step in ps (paper: 1 fs).
    temperature:
        Background lattice temperature (K) before the kick.
    displacement_threshold:
        Distance from the lattice point beyond which an atom is declared
        run-away (vacancy left behind).
    runaway_check_interval:
        Steps between run-away/capture scans.
    """

    pka_energy: float = 120.0
    pka_direction: tuple[float, float, float] = (1.0, 0.7, 0.3)
    pka_site: int | None = None
    nsteps: int = 200
    dt: float = 0.001
    temperature: float = 600.0
    displacement_threshold: float = 1.2
    runaway_check_interval: int = 5

    def __post_init__(self) -> None:
        if self.pka_energy <= 0:
            raise ValueError(f"pka_energy must be positive, got {self.pka_energy}")
        if self.nsteps < 1:
            raise ValueError(f"nsteps must be >= 1, got {self.nsteps}")
        if self.displacement_threshold <= 0:
            raise ValueError("displacement_threshold must be positive")


@dataclass
class CascadeResult:
    """Damage inventory produced by a cascade run."""

    vacancy_rows: np.ndarray
    vacancy_positions: np.ndarray
    n_runaways: int
    n_frenkel_pairs: int
    final_temperature: float
    energy_trace: list = field(default_factory=list)
    #: Positions of the run-away (interstitial) atoms, shape (n, 3).
    runaway_positions: np.ndarray = field(
        default_factory=lambda: np.empty((0, 3))
    )


def insert_pka(state: AtomState, config: CascadeConfig, lattice) -> int:
    """Give one atom the PKA kinetic energy; returns the chosen row."""
    if config.pka_site is not None:
        row = int(config.pka_site)
        if not 0 <= row < state.n:
            raise ValueError(f"pka_site {row} out of range")
        if state.ids[row] < 0:
            raise ValueError(f"pka_site {row} is a vacancy")
    else:
        center = lattice.lengths / 2.0
        occ_rows = np.flatnonzero(state.occupied)
        d = np.linalg.norm(state.x[occ_rows] - center, axis=1)
        row = int(occ_rows[np.argmin(d)])
    direction = np.asarray(config.pka_direction, dtype=float)
    norm = np.linalg.norm(direction)
    if norm <= 0:
        raise ValueError("pka_direction must be a nonzero vector")
    direction = direction / norm
    # E = 1/2 m v^2 (with the metal-units conversion) => |v|.
    speed = np.sqrt(2.0 * config.pka_energy / (state.mass * MVV2E))
    state.v[row] = speed * direction
    return row


def run_cascade(engine, config: CascadeConfig) -> CascadeResult:
    """Run a full cascade on an :class:`~repro.md.engine.MDEngine`.

    The engine must already be constructed (lattice + potential).  The
    sequence follows the paper: thermalize, kick, evolve, report the
    vacancy coordinates "and the information of atoms" for KMC.
    """
    engine.initialize(temperature=config.temperature)
    insert_pka(engine.state, config, engine.lattice)
    trace = engine.run(
        nsteps=config.nsteps,
        dt=config.dt,
        displacement_threshold=config.displacement_threshold,
        runaway_check_interval=config.runaway_check_interval,
    )
    state = engine.state
    vac_rows = state.vacancy_rows()
    runs = engine.nblist.runaways
    return CascadeResult(
        vacancy_rows=vac_rows,
        vacancy_positions=state.site_pos[vac_rows].copy(),
        n_runaways=engine.nblist.n_runaways,
        n_frenkel_pairs=min(len(vac_rows), engine.nblist.n_runaways),
        final_temperature=state.temperature(),
        energy_trace=trace,
        runaway_positions=(
            np.array([a.x for a in runs]).reshape(-1, 3)
        ),
    )
