"""MD simulation drivers: serial engine and domain-decomposed parallel MD.

:class:`MDEngine` is the single-process driver used for physics runs
(cascades, coupling with KMC): full run-away atom support through the
lattice neighbor list.

:class:`ParallelMD` executes the paper's parallel MD structure for real on
the in-process runtime: domain decomposition, static-pattern ghost
exchange of positions, a second exchange of electron densities between the
EAM passes, and per-rank force computation over owned centrals.  It is
used by the scaling experiments (where its measured per-atom compute cost
and per-step communication volume calibrate the performance model) and by
the serial/parallel equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import observe as obs
from repro.constants import FM2A
from repro.lattice.bcc import BCCLattice
from repro.lattice.box import Box
from repro.lattice.domain import DomainDecomposition, choose_grid
from repro.md.forces import compute_energy_forces, star_density, star_forces
from repro.md.ghost import GhostExchanger
from repro.md.integrator import VelocityVerlet
from repro.md.neighbors.lattice_list import LatticeNeighborList
from repro.md.state import AtomState
from repro.md.thermostat import berendsen_rescale, maxwell_boltzmann_velocities
from repro.potential.eam import EAMPotential
from repro.potential.fe import make_fe_potential
from repro.runtime.simmpi import World

#: Tag bases separating the two ghost-exchange phases of each step.
TAG_POSITIONS = 0
TAG_DENSITY = 100
TAG_INIT = 200


@dataclass(frozen=True)
class MDConfig:
    """Knobs of an MD run."""

    dt: float = 0.001
    temperature: float = 600.0
    seed: int = 2018
    table_layout: str = "traditional"
    thermostat_tau: float = 0.05

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        if self.temperature < 0:
            raise ValueError("temperature must be non-negative")


@dataclass
class StepRecord:
    """Per-step observables appended to the engine's trace."""

    step: int
    potential_energy: float
    kinetic_energy: float
    temperature: float

    @property
    def total_energy(self) -> float:
        return self.potential_energy + self.kinetic_energy


class MDEngine:
    """Serial MD driver over the lattice neighbor list.

    Parameters
    ----------
    lattice:
        The BCC lattice to simulate.
    potential:
        EAM potential; defaults to the iron-like parameterization.
    config:
        Run configuration.
    """

    def __init__(
        self,
        lattice: BCCLattice,
        potential: EAMPotential | None = None,
        config: MDConfig | None = None,
    ) -> None:
        self.lattice = lattice
        self.config = config or MDConfig()
        self.potential = potential or make_fe_potential(
            layout=self.config.table_layout
        )
        self.box = Box.for_lattice(lattice)
        self.state = AtomState.perfect(lattice)
        self.nblist = LatticeNeighborList(lattice, self.potential.cutoff)
        self.trace: list[StepRecord] = []
        self._step = 0

    def initialize(self, temperature: float | None = None) -> None:
        """Thermal velocities + initial forces (call before :meth:`run`)."""
        with obs.phase("md.initialize"):
            t = self.config.temperature if temperature is None else temperature
            rng = np.random.default_rng(self.config.seed)
            maxwell_boltzmann_velocities(self.state, t, rng)
            compute_energy_forces(self.potential, self.state, self.nblist)

    def run(
        self,
        nsteps: int,
        dt: float | None = None,
        thermostat_target: float | None = None,
        displacement_threshold: float | None = None,
        runaway_check_interval: int = 5,
    ) -> list[StepRecord]:
        """Integrate ``nsteps`` steps; returns the step records appended.

        ``displacement_threshold`` enables run-away/vacancy detection every
        ``runaway_check_interval`` steps (disabled when ``None``, giving a
        pure NVE run for conservation tests).
        """
        if nsteps < 1:
            raise ValueError(f"nsteps must be >= 1, got {nsteps}")
        integ = VelocityVerlet(dt if dt is not None else self.config.dt)
        new_records: list[StepRecord] = []
        for _ in range(nsteps):
            with obs.phase("md.step"):
                with obs.phase("md.integrate"):
                    integ.first_half(self.state, self.nblist)
                    self._wrap_positions()
                if (
                    displacement_threshold is not None
                    and self._step % runaway_check_interval == 0
                ):
                    with obs.phase("md.neighbor"):
                        self.nblist.update_runaways(
                            self.state, displacement_threshold
                        )
                with obs.phase("md.force"):
                    epot = compute_energy_forces(
                        self.potential, self.state, self.nblist
                    )
                with obs.phase("md.integrate"):
                    integ.second_half(self.state, self.nblist)
                if thermostat_target is not None:
                    with obs.phase("md.thermostat"):
                        berendsen_rescale(
                            self.state,
                            thermostat_target,
                            integ.dt,
                            self.config.thermostat_tau,
                        )
            rec = StepRecord(
                step=self._step,
                potential_energy=epot,
                kinetic_energy=self.state.kinetic_energy()
                + self._runaway_kinetic_energy(),
                temperature=self.state.temperature(),
            )
            self.trace.append(rec)
            new_records.append(rec)
            self._step += 1
        return new_records

    def _wrap_positions(self) -> None:
        occ = self.state.occupied
        self.state.x[occ] = self.box.wrap(self.state.x[occ])
        for atom in self.nblist.runaways:
            atom.x = self.box.wrap(atom.x)

    def _runaway_kinetic_energy(self) -> float:
        from repro.constants import MVV2E

        return sum(
            0.5 * self.state.mass * MVV2E * float(np.dot(a.v, a.v))
            for a in self.nblist.runaways
        )

    @property
    def potential_energy(self) -> float:
        """Recompute the current potential energy (also refreshes forces)."""
        return compute_energy_forces(self.potential, self.state, self.nblist)


@dataclass
class ParallelMDResult:
    """Global outcome of a parallel MD run."""

    energy_trace: list[float]
    positions: np.ndarray
    velocities: np.ndarray
    comm_stats: dict
    nranks: int


class ParallelMD:
    """Domain-decomposed MD over the in-process runtime.

    Runs on perfect lattices (no run-away tracking — cascade physics is
    exercised by the serial engine; this driver exists to execute and
    measure the *parallel structure*: decomposition, two-phase ghost
    exchange, star-pattern EAM kernel).

    Parameters
    ----------
    lattice:
        Global lattice.
    grid:
        Process grid; ``None`` lets :func:`choose_grid` pick one for
        ``nranks``.
    nranks:
        World size when ``grid`` is None.
    """

    def __init__(
        self,
        lattice: BCCLattice,
        potential: EAMPotential | None = None,
        config: MDConfig | None = None,
        grid: tuple[int, int, int] | None = None,
        nranks: int | None = None,
        network=None,
        backend: str | None = None,
    ) -> None:
        self.lattice = lattice
        self.config = config or MDConfig()
        self.potential = potential or make_fe_potential(
            layout=self.config.table_layout
        )
        if grid is None:
            if nranks is None:
                raise ValueError("provide either grid or nranks")
            grid = choose_grid(nranks, (lattice.nx, lattice.ny, lattice.nz))
        self.decomp = DomainDecomposition(lattice, grid)
        self.box = Box.for_lattice(lattice)
        self.network = network
        self.backend = backend

    @property
    def nranks(self) -> int:
        return self.decomp.nprocs

    # ------------------------------------------------------------------
    def _initial_velocities(self) -> np.ndarray:
        """Deterministic global velocity field (same as a serial engine).

        Every rank derives the full field from the shared seed and slices
        its sites, so a parallel run is bit-comparable with a serial run
        from the same seed.
        """
        state = AtomState.perfect(self.lattice)
        rng = np.random.default_rng(self.config.seed)
        maxwell_boltzmann_velocities(state, self.config.temperature, rng)
        return state.v

    def run(self, nsteps: int, dt: float | None = None) -> ParallelMDResult:
        """Execute ``nsteps`` of parallel MD; gather the global state."""
        if nsteps < 1:
            raise ValueError(f"nsteps must be >= 1, got {nsteps}")
        dt = dt if dt is not None else self.config.dt
        v_global = self._initial_velocities()
        width = self.decomp.ghost_width_cells(self.potential.cutoff)
        lattice = self.lattice
        pot = self.potential
        box = self.box

        def rank_main(comm):
            sub = self.decomp.subdomain(comm.rank)
            owned = sub.owned_site_ranks(lattice)
            ghosts = sub.all_ghost_site_ranks(lattice, width)
            sites = np.union1d(owned, ghosts)
            central_rows = np.searchsorted(sites, owned)
            state = AtomState.for_sites(lattice, sites)
            state.v[:] = v_global[sites]
            nblist = LatticeNeighborList(
                lattice, pot.cutoff, sites=sites, centrals=central_rows
            )
            ex = GhostExchanger(self.decomp, comm.rank, sites, width)
            occ = state.occupied
            own_mask = np.zeros(len(sites), dtype=bool)
            own_mask[central_rows] = True
            fm = FM2A / state.mass

            forces = np.zeros((len(sites), 3))
            energy_trace: list[float] = []

            def eam_step() -> float:
                with obs.phase("md.ghost_exchange"):
                    ex.exchange(comm, TAG_POSITIONS, [state.x])
                with obs.phase("md.force"):
                    rho_c, pair_e = star_density(
                        pot,
                        state.x,
                        occ,
                        central_rows,
                        nblist.matrix,
                        nblist.valid,
                        box,
                    )
                    state.rho[central_rows] = rho_c
                with obs.phase("md.ghost_exchange"):
                    ex.exchange(comm, TAG_DENSITY, [state.rho])
                with obs.phase("md.force"):
                    f_c = star_forces(
                        pot,
                        state.x,
                        occ,
                        state.rho,
                        central_rows,
                        nblist.matrix,
                        nblist.valid,
                        box,
                    )
                    forces[central_rows] = f_c
                    embed_e = float(np.sum(pot.embed(state.rho[central_rows])))
                return pair_e + embed_e

            local_e = eam_step()
            for _ in range(nsteps):
                with obs.phase("md.step"):
                    with obs.phase("md.integrate"):
                        state.v[central_rows] += (
                            0.5 * dt * fm * forces[central_rows]
                        )
                        state.x[central_rows] += dt * state.v[central_rows]
                        state.x[central_rows] = box.wrap(state.x[central_rows])
                    local_e = eam_step()
                    with obs.phase("md.integrate"):
                        state.v[central_rows] += (
                            0.5 * dt * fm * forces[central_rows]
                        )
                    energy_trace.append(comm.allreduce(local_e))
            return {
                "owned": owned,
                "x": state.x[central_rows].copy(),
                "v": state.v[central_rows].copy(),
                "energy_trace": energy_trace,
            }

        world = World(self.nranks, network=self.network, backend=self.backend)
        results = world.run(rank_main)
        # Stitch the global arrays back together in site-rank order.
        nsites = lattice.nsites
        x = np.zeros((nsites, 3))
        v = np.zeros((nsites, 3))
        for res in results:
            x[res["owned"]] = res["x"]
            v[res["owned"]] = res["v"]
        return ParallelMDResult(
            energy_trace=results[0]["energy_trace"],
            positions=x,
            velocities=v,
            comm_stats=world.stats.snapshot(),
            nranks=self.nranks,
        )
