"""Static-pattern ghost exchange for parallel MD.

"When exchanging the ghost data, the lattice points (either an atom or a
vacancy) in the ghost region is packed (unpacked) and sent (received)
according to the indexes in the array. For the ghost data at the lattice
points, the communication pattern is static, which can be reused at each
time step." (§2.1.1)

:class:`GhostExchanger` precomputes, once, the per-direction send/receive
row index lists of a subdomain, then moves any set of state arrays through
them.  MD uses two exchange phases per step: positions+occupancy before
the density pass, and electron densities before the force pass (the
embedding derivative of a ghost atom must come from its owner, which sees
the atom's full neighborhood).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lattice.bcc import BCCLattice
from repro.lattice.domain import DIRECTIONS, DomainDecomposition

#: Index of the opposite direction for each entry of DIRECTIONS.
_OPPOSITE = [
    DIRECTIONS.index(tuple(-c for c in d)) for d in DIRECTIONS
]


@dataclass(frozen=True)
class ExchangePlan:
    """One direction's precomputed exchange: who, and which rows."""

    direction: tuple[int, int, int]
    dir_index: int
    neighbor: int
    send_rows: np.ndarray
    recv_rows: np.ndarray


class GhostExchanger:
    """Reusable ghost-exchange schedule of one rank's subdomain.

    Parameters
    ----------
    decomp:
        The global domain decomposition.
    rank:
        This process's linear rank.
    sites:
        Sorted global site ranks of the local arrays (owned + ghosts);
        exchanged rows are indices into this array.
    width:
        Ghost shell width in cells (>= ceil(cutoff / a)).
    """

    def __init__(
        self,
        decomp: DomainDecomposition,
        rank: int,
        sites: np.ndarray,
        width: int,
    ) -> None:
        lattice: BCCLattice = decomp.lattice
        sub = decomp.subdomain(rank)
        self.rank = rank
        self.width = width
        self.plans: list[ExchangePlan] = []
        for di, d in enumerate(DIRECTIONS):
            neighbor = decomp.neighbor_rank(rank, d)
            if neighbor == rank:
                # Periodic wrap onto our own subdomain: the ghost rows and
                # the source rows are the same array entries; no exchange.
                continue
            send_ranks = sub.send_site_ranks(lattice, d, width)
            recv_ranks = sub.ghost_site_ranks(lattice, d, width)
            self.plans.append(
                ExchangePlan(
                    direction=d,
                    dir_index=di,
                    neighbor=neighbor,
                    send_rows=_rows_of(sites, send_ranks),
                    recv_rows=_rows_of(sites, recv_ranks),
                )
            )

    def exchange(self, comm, tag_base: int, arrays: list[np.ndarray]) -> None:
        """Ship boundary rows of each array; fill ghost rows in place.

        All sends are posted eagerly first (MPI eager protocol), then the
        matching receives are drained — the standard halo-exchange shape.
        ``tag_base`` separates concurrent exchange phases; direction
        indexes 0..25 are added to it.
        """
        for plan in self.plans:
            payload = [np.ascontiguousarray(a[plan.send_rows]) for a in arrays]
            comm.send(plan.neighbor, tag_base + plan.dir_index, payload)
        for plan in self.plans:
            # Our neighbor toward d tagged its message with the opposite
            # direction (its direction toward us).
            _src, _tag, payload = comm.recv(
                source=plan.neighbor, tag=tag_base + _OPPOSITE[plan.dir_index]
            )
            for a, data in zip(arrays, payload, strict=True):
                a[plan.recv_rows] = data

    @property
    def bytes_per_exchange_estimate(self) -> int:
        """Bytes this rank sends per exchange of one float64 (n,3) field."""
        return sum(len(p.send_rows) * 24 for p in self.plans)


def _rows_of(sites: np.ndarray, ranks: np.ndarray) -> np.ndarray:
    """Indices of ``ranks`` (global, possibly unwrapped duplicates) in ``sites``."""
    rows = np.searchsorted(sites, ranks)
    if np.any(rows >= len(sites)) or np.any(sites[np.minimum(rows, len(sites) - 1)] != ranks):
        raise ValueError("exchange ranks not present in the local site set")
    return rows
