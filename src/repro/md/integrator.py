"""Velocity Verlet time integration.

Standard symplectic integrator used by the paper's MD ("updates the
coordinates and the velocity of the atoms").  Operates on
:class:`~repro.md.state.AtomState` plus the run-away atoms of a
:class:`~repro.md.neighbors.lattice_list.LatticeNeighborList`.
"""

from __future__ import annotations


from repro.constants import FM2A
from repro.md.neighbors.lattice_list import LatticeNeighborList
from repro.md.state import AtomState


class VelocityVerlet:
    """Velocity Verlet with the MD 'metal' unit system.

    Parameters
    ----------
    dt:
        Time step in picoseconds (the paper uses 1 fs = 0.001 ps).
    """

    def __init__(self, dt: float = 0.001) -> None:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.dt = float(dt)

    def first_half(self, state: AtomState, nblist: LatticeNeighborList | None = None) -> None:
        """Half-kick velocities, then drift positions by a full step."""
        occ = state.occupied
        acc = state.f * (FM2A / state.mass)
        state.v[occ] += 0.5 * self.dt * acc[occ]
        state.x[occ] += self.dt * state.v[occ]
        if nblist is not None:
            for atom in nblist.runaways:
                atom.v = atom.v + 0.5 * self.dt * (FM2A / state.mass) * atom.f
                atom.x = atom.x + self.dt * atom.v

    def second_half(self, state: AtomState, nblist: LatticeNeighborList | None = None) -> None:
        """Half-kick with the freshly computed forces."""
        occ = state.occupied
        acc = state.f * (FM2A / state.mass)
        state.v[occ] += 0.5 * self.dt * acc[occ]
        if nblist is not None:
            for atom in nblist.runaways:
                atom.v = atom.v + 0.5 * self.dt * (FM2A / state.mass) * atom.f

    def step(
        self,
        state: AtomState,
        compute_forces,
        nblist: LatticeNeighborList | None = None,
    ) -> float:
        """One full step; ``compute_forces()`` must refresh ``state.f``.

        Returns whatever ``compute_forces`` returns (the potential energy
        in the engine's usage).
        """
        self.first_half(state, nblist)
        energy = compute_forces()
        self.second_half(state, nblist)
        return energy
