"""Persistent on-disk job queue: one journaled JSON record per job.

The queue is a directory of ``job-NNNNNN.json`` files.  Two invariants
make it crash-safe without a database:

* **Accepted means durable.**  :meth:`JobQueue.submit` writes the full
  record to a unique fsynced temp file first and then *hard-links* it
  to the next free slot name.  ``link(2)`` is atomic and fails with
  ``EEXIST`` on a taken name, so concurrent submitters can never claim
  the same id and a crash at any instant leaves either no record or one
  complete record — never a torn or duplicated job.
* **Single-writer transitions.**  After submission only the scheduler
  rewrites a record (``pending → running → done | failed``), through
  :func:`repro.io.atomic.atomic_write`, so readers always parse a
  complete JSON document.

Job ids are their file names; the record payload carries the spec and
the mutable scheduling state.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.io.atomic import _fsync_dir, atomic_write
from repro.service.spec import ScenarioSpec, SpecError, canonical_json

#: Record format tag, checked on every load.
JOB_FORMAT = "repro-service-job-v1"

#: Job states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
STATES = (PENDING, RUNNING, DONE, FAILED)

#: How a finished job got its result.
MODES = ("executed", "attached", "cached")


class ServiceError(RuntimeError):
    """The service layer hit an inconsistent queue, cache, or request."""


@dataclass
class JobRecord:
    """One job: an accepted spec plus its scheduling state."""

    job_id: str
    spec: ScenarioSpec
    state: str = PENDING
    #: Execution attempts consumed by this job's key when it finished
    #: (shared across attached jobs of one execution).
    attempts: int = 0
    #: ``executed`` ran the simulation, ``attached`` joined an in-flight
    #: execution of the same key, ``cached`` hit a published entry.
    mode: str | None = None
    #: Failure description once ``state == FAILED``.
    error: str | None = None
    #: Cache key (derived from the spec; cached here for display).
    key: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.key:
            self.key = self.spec.key()

    def to_payload(self) -> dict:
        return {
            "format": JOB_FORMAT,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "attempts": self.attempts,
            "mode": self.mode,
            "error": self.error,
            "key": self.key,
        }

    @classmethod
    def from_payload(cls, job_id: str, payload: dict) -> JobRecord:
        if payload.get("format") != JOB_FORMAT:
            raise ServiceError(
                f"job {job_id}: not a {JOB_FORMAT} record "
                f"(format={payload.get('format')!r})"
            )
        try:
            spec = ScenarioSpec.from_dict(payload["spec"])
        except (KeyError, TypeError, SpecError) as exc:
            raise ServiceError(f"job {job_id}: bad spec: {exc}") from exc
        record = cls(
            job_id=job_id,
            spec=spec,
            state=payload.get("state", PENDING),
            attempts=int(payload.get("attempts", 0)),
            mode=payload.get("mode"),
            error=payload.get("error"),
        )
        if record.state not in STATES:
            raise ServiceError(f"job {job_id}: unknown state {record.state!r}")
        return record


class JobQueue:
    """The ``queue/`` directory of a service root."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.dir = self.root / "queue"
        self.dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Submission (crash-safe, multi-submitter)
    # ------------------------------------------------------------------
    def _next_id(self) -> int:
        highest = 0
        for name in os.listdir(self.dir):
            if name.startswith("job-") and name.endswith(".json"):
                try:
                    highest = max(highest, int(name[4:-5]))
                except ValueError:
                    continue
        return highest + 1

    def submit(self, spec: ScenarioSpec) -> JobRecord:
        """Durably accept one job; returns its record (state pending).

        Identical specs submitted twice create two *jobs* on purpose —
        deduplication is the scheduler's concern (both jobs attach to
        one execution / cache entry), and each submitter gets its own
        handle to wait on.
        """
        record = JobRecord(job_id="", spec=spec)
        fd, tmp_name = tempfile.mkstemp(
            prefix="submit.", suffix=".tmp", dir=self.dir
        )
        try:
            with os.fdopen(fd, "w", encoding="ascii") as fh:
                # The payload never contains the id: the slot name the
                # link lands on *is* the id, so the record cannot
                # disagree with its file name.
                fh.write(canonical_json(record.to_payload()))
                fh.flush()
                os.fsync(fh.fileno())
            n = self._next_id()
            while True:
                final = self.dir / f"job-{n:06d}.json"
                try:
                    os.link(tmp_name, final)
                    break
                except FileExistsError:
                    # Another submitter claimed the slot between our
                    # scan and the link; take the next one.
                    n += 1
        finally:
            os.unlink(tmp_name)
        _fsync_dir(self.dir)
        record.job_id = f"job-{n:06d}"
        return record

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _load(self, path: Path) -> JobRecord:
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise ServiceError(f"cannot read job record {path}: {exc}") from exc
        return JobRecord.from_payload(path.stem, payload)

    def get(self, job_id: str) -> JobRecord:
        path = self.dir / f"{job_id}.json"
        if not path.exists():
            raise ServiceError(f"no such job {job_id!r} in {self.dir}")
        return self._load(path)

    def jobs(self) -> list[JobRecord]:
        """All records in id order (submission order)."""
        names = sorted(
            name
            for name in os.listdir(self.dir)
            if name.startswith("job-") and name.endswith(".json")
        )
        return [self._load(self.dir / name) for name in names]

    def counts(self) -> dict:
        """State histogram of the queue."""
        out = dict.fromkeys(STATES, 0)
        for record in self.jobs():
            out[record.state] += 1
        return out

    # ------------------------------------------------------------------
    # State transitions (scheduler-owned)
    # ------------------------------------------------------------------
    def update(self, record: JobRecord) -> None:
        """Atomically rewrite one record (scheduler state transition)."""
        if not record.job_id:
            raise ServiceError("cannot update a record with no job id")
        path = self.dir / f"{record.job_id}.json"
        if not path.exists():
            raise ServiceError(f"no such job {record.job_id!r} in {self.dir}")
        with atomic_write(path) as fh:
            fh.write(canonical_json(record.to_payload()).encode("ascii"))
