"""The service pool: pending jobs onto worker processes, with retries.

:class:`ServicePool` owns one service root (the documented topology is
one live scheduler per root; concurrent schedulers stay *correct* —
publication races are first-writer-wins — but waste work).  Each
:meth:`ServicePool.step` pass:

1. reaps finished worker processes — an execution whose cache entry is
   published completes every job attached to its key; a dead worker
   with no published entry is retried with a fresh staging directory
   up to ``max_attempts`` times (``service.retries``), then all its
   jobs fail with the worker's reported error;
2. schedules pending jobs in submission order — a job whose key is
   already in flight *attaches* to that execution (``service.dedup``),
   a key with a published entry completes immediately
   (``service.cache_hits``), and otherwise a free worker slot forks a
   fresh execution (``service.executions``).

Workers are separate OS processes (fork where available), so a worker
crash — organic or injected — never takes the scheduler down; the PR 3
recovery supervisor handles faults *inside* a run, the retry loop here
handles the loss of the whole worker.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import observe as obs
from repro.service import worker as worker_mod
from repro.service.cache import ResultCache
from repro.service.queue import (
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    JobQueue,
    JobRecord,
)

#: Default bound on execution attempts per key.
DEFAULT_MAX_ATTEMPTS = 3


def _pick_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


@dataclass
class _Execution:
    """One in-flight worker process and the jobs riding on it."""

    key: str
    spec_dict: dict
    staging: Path
    obs_path: Path
    attempts: int = 1
    proc: object = None
    job_ids: list = field(default_factory=list)


class ServicePool:
    """Schedule queued scenario jobs onto a pool of worker processes.

    Parameters
    ----------
    root:
        The service root directory (queue/cache/tmp/obs live under it).
    workers:
        Maximum concurrent executions (worker processes).
    max_attempts:
        Execution attempts per key before its jobs fail.
    target:
        The worker process entry point; replaceable in tests to inject
        worker crashes (signature of
        :func:`repro.service.worker.run_job`).
    notify:
        Optional callable receiving one human-readable line per
        scheduling event (the ``serve`` CLI's live log).
    """

    def __init__(
        self,
        root,
        *,
        workers: int = 2,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        target=None,
        notify=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.root = Path(root)
        self.workers = workers
        self.max_attempts = max_attempts
        self.queue = JobQueue(self.root)
        self.cache = ResultCache(self.root)
        self.obs_dir = self.root / "obs"
        self.obs_dir.mkdir(parents=True, exist_ok=True)
        self._target = target if target is not None else worker_mod.run_job
        self._notify = notify
        self._ctx = _pick_context()
        self._execs: dict[str, _Execution] = {}
        # Crashed executions from a previous scheduler life left their
        # staging dirs behind; nothing else references tmp/.
        self.cache.clean_orphans()

    # ------------------------------------------------------------------
    # Event reporting
    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        if self._notify is not None:
            self._notify(message)

    # ------------------------------------------------------------------
    # Launch / attach / complete
    # ------------------------------------------------------------------
    def _spawn(self, execution: _Execution) -> None:
        execution.proc = self._ctx.Process(
            target=self._target,
            args=(
                execution.spec_dict,
                str(execution.staging),
                str(self.root),
                str(execution.obs_path),
                execution.attempts,
            ),
            name=f"repro-worker-{execution.key[:12]}",
        )
        execution.proc.start()

    def _launch(self, job: JobRecord) -> None:
        execution = _Execution(
            key=job.key,
            spec_dict=job.spec.to_dict(),
            staging=self.cache.open_staging(job.key),
            obs_path=self.obs_dir / f"{job.key}.json",
            job_ids=[job.job_id],
        )
        self._spawn(execution)
        self._execs[job.key] = execution
        job.state = RUNNING
        job.mode = "executed"
        job.attempts = 1
        self.queue.update(job)
        obs.add("service.executions")
        self._log(
            f"{job.job_id} -> executing key={job.key[:12]} "
            f"(pid {execution.proc.pid})"
        )

    def _attach(self, job: JobRecord, execution: _Execution) -> None:
        execution.job_ids.append(job.job_id)
        job.state = RUNNING
        job.mode = "attached"
        job.attempts = execution.attempts
        self.queue.update(job)
        obs.add("service.dedup")
        self._log(f"{job.job_id} -> attached to in-flight key={job.key[:12]}")

    def _complete_from_cache(self, job: JobRecord) -> None:
        job.state = DONE
        job.mode = "cached"
        self.queue.update(job)
        obs.add("service.cache_hits")
        self._log(f"{job.job_id} -> done (cache hit, key={job.key[:12]})")

    def _finish_execution(self, execution: _Execution, state: str,
                          error: str | None) -> None:
        for job_id in execution.job_ids:
            record = self.queue.get(job_id)
            record.state = state
            record.attempts = execution.attempts
            record.error = error
            self.queue.update(record)

    # ------------------------------------------------------------------
    # Reaping and retries
    # ------------------------------------------------------------------
    def _read_error(self, execution: _Execution) -> str:
        path = worker_mod.error_path_for(execution.staging)
        try:
            text = path.read_text().strip()
            path.unlink()
            return text
        except OSError:
            code = execution.proc.exitcode
            return f"worker died with exit code {code} before reporting"

    def _reap(self) -> None:
        for key, execution in list(self._execs.items()):
            if execution.proc.is_alive():
                continue
            execution.proc.join()
            if self.cache.lookup(key) is not None:
                # Published artifacts are complete by construction
                # (manifest-last + atomic rename), even if the worker
                # died between publishing and exiting cleanly.
                self._finish_execution(execution, DONE, None)
                del self._execs[key]
                self._log(
                    f"key={key[:12]} published "
                    f"({len(execution.job_ids)} job(s) done, "
                    f"attempt {execution.attempts})"
                )
                continue
            error = self._read_error(execution)
            self.cache.discard(execution.staging)
            if execution.attempts < self.max_attempts:
                execution.attempts += 1
                execution.staging = self.cache.open_staging(key)
                self._spawn(execution)
                for job_id in execution.job_ids:
                    record = self.queue.get(job_id)
                    record.attempts = execution.attempts
                    self.queue.update(record)
                obs.add("service.retries")
                self._log(
                    f"key={key[:12]} worker lost ({error}); retrying "
                    f"(attempt {execution.attempts}/{self.max_attempts})"
                )
            else:
                self._finish_execution(execution, FAILED, error)
                del self._execs[key]
                obs.add("service.failures")
                self._log(
                    f"key={key[:12]} failed after "
                    f"{execution.attempts} attempt(s): {error}"
                )

    # ------------------------------------------------------------------
    # The scheduling pass
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """One reap+schedule pass; ``True`` while work remains."""
        self._reap()
        waiting = 0
        for job in self.queue.jobs():
            if job.state != PENDING:
                continue
            execution = self._execs.get(job.key)
            if execution is not None:
                self._attach(job, execution)
            elif self.cache.lookup(job.key) is not None:
                self._complete_from_cache(job)
            elif len(self._execs) < self.workers:
                self._launch(job)
            else:
                waiting += 1
        return bool(self._execs) or waiting > 0

    def run(self, *, drain: bool = False, poll: float = 0.05) -> None:
        """Schedule until interrupted — or, with ``drain``, until idle."""
        with obs.phase("service.schedule"):
            while True:
                active = self.step()
                if drain and not active:
                    return
                time.sleep(poll)

    def shutdown(self, *, kill: bool = False) -> None:
        """Stop scheduling; optionally kill in-flight workers.

        Without ``kill``, in-flight workers keep running to completion
        (their publishes remain valid; a later scheduler completes the
        attached jobs from the cache).
        """
        for execution in self._execs.values():
            if kill and execution.proc is not None and execution.proc.is_alive():
                execution.proc.terminate()
                execution.proc.join()
        self._execs.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def in_flight(self) -> dict:
        """Key -> (attempt, pid, job ids) of the running executions."""
        return {
            key: {
                "attempt": execution.attempts,
                "pid": execution.proc.pid if execution.proc else None,
                "jobs": list(execution.job_ids),
            }
            for key, execution in self._execs.items()
        }

    def worker_pids(self) -> list[int]:
        return [
            execution.proc.pid
            for execution in self._execs.values()
            if execution.proc is not None and execution.proc.is_alive()
        ]


def summarize(records: list[JobRecord]) -> dict:
    """Queue-level statistics of a record list (the ``status`` payload)."""
    states = {state: 0 for state in (PENDING, RUNNING, DONE, FAILED)}
    executed = deduplicated = retries = 0
    for record in records:
        states[record.state] += 1
        if record.mode == "executed":
            executed += 1
            retries += max(0, record.attempts - 1)
        elif record.mode in ("attached", "cached"):
            deduplicated += 1
    return {
        "total": len(records),
        "states": states,
        "executions": executed,
        "deduplicated": deduplicated,
        "retries": retries,
    }
