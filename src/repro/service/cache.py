"""Content-addressed result cache: one published directory per spec key.

Layout under a service root::

    cache/<sha256-key>/         published, immutable result entries
        MANIFEST.json           per-file sha256 + sizes, written last
        result.json             deterministic run summary
        vacancies_after_*.npy   deterministic damage states
        trajectory/             chunked store (when the spec asks)
        checkpoint/*.npz        final checkpoints (not bit-deterministic:
                                npz embeds zip timestamps)
        run.json                execution metadata (attempts, recoveries)
    tmp/<key>.<rand>/           staging dirs of in-flight executions

Publish protocol (the atomicity invariant the service tests assert):
the worker stages every artifact into a fresh ``tmp/`` directory,
:meth:`ResultCache.publish` writes the manifest *last*, fsyncs every
staged file, and renames the whole directory onto ``cache/<key>`` in
one ``rename(2)``.  A reader that can see ``MANIFEST.json`` therefore
sees every artifact it describes, complete and durable; a crash at any
earlier instant leaves only an orphaned staging directory that the next
scheduler start sweeps away.  If two executions of one key race (two
pools on one root), the first rename wins and the loser discards its
staging — "exactly one published entry per key" holds without locks.

The manifest separates ``deterministic`` artifacts (bit-identical
across re-executions, schemes, backends, and crash recoveries — the
cache-hit contract) from best-effort ones (checkpoints, run metadata).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path

from repro import observe as obs
from repro.io.atomic import _fsync_dir, atomic_write
from repro.service.queue import ServiceError
from repro.service.spec import SPEC_SCHEMA_VERSION, canonical_json

#: Manifest file name; its presence marks an entry as published.
MANIFEST_NAME = "MANIFEST.json"

CACHE_FORMAT = "repro-service-cache-v1"

#: Artifacts guaranteed bit-identical across re-executions of a spec
#: (everything else in an entry is best-effort metadata).
_DETERMINISTIC = ("result.json", "vacancies_after_md.npy",
                  "vacancies_after_kmc.npy", "trajectory/")


def _sha256_file(path: Path) -> tuple[str, int]:
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as fh:
        while True:
            block = fh.read(1 << 20)
            if not block:
                break
            digest.update(block)
            size += len(block)
    return digest.hexdigest(), size


def _fsync_tree(root: Path) -> None:
    """Fsync every file and directory under ``root`` (and root itself)."""
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            fd = os.open(os.path.join(dirpath, name), os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        _fsync_dir(Path(dirpath))


def is_deterministic(rel_path: str) -> bool:
    """Whether a manifest entry is part of the bit-identity contract."""
    return any(
        rel_path == name or (name.endswith("/") and rel_path.startswith(name))
        for name in _DETERMINISTIC
    )


class ResultCache:
    """The ``cache/`` + ``tmp/`` directories of a service root."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.dir = self.root / "cache"
        self.tmp = self.root / "tmp"
        self.dir.mkdir(parents=True, exist_ok=True)
        self.tmp.mkdir(parents=True, exist_ok=True)

    def entry_path(self, key: str) -> Path:
        return self.dir / key

    def lookup(self, key: str) -> Path | None:
        """The published entry for ``key``, or ``None``.

        Only a directory containing a manifest counts: the rename that
        publishes an entry is atomic, so this check never sees a
        half-written result.
        """
        entry = self.entry_path(key)
        if (entry / MANIFEST_NAME).is_file():
            return entry
        return None

    def manifest(self, key: str) -> dict:
        entry = self.lookup(key)
        if entry is None:
            raise ServiceError(f"no cache entry for key {key}")
        return json.loads((entry / MANIFEST_NAME).read_text())

    # ------------------------------------------------------------------
    # Staging and publication
    # ------------------------------------------------------------------
    def open_staging(self, key: str) -> Path:
        """A fresh private directory for one execution's artifacts."""
        return Path(tempfile.mkdtemp(prefix=f"{key[:16]}.", dir=self.tmp))

    def discard(self, staging) -> None:
        """Drop a staging directory (failed or superseded execution)."""
        shutil.rmtree(staging, ignore_errors=True)

    def clean_orphans(self) -> int:
        """Remove leftover staging dirs (crashed executions of past runs).

        Only safe while no other scheduler is active on this root —
        :class:`~repro.service.scheduler.ServicePool` calls it once at
        start, the documented single-scheduler topology.
        """
        removed = 0
        for entry in self.tmp.iterdir():
            shutil.rmtree(entry, ignore_errors=True)
            removed += 1
        if removed:
            obs.add("service.cache.orphans_swept", removed)
        return removed

    def publish(self, key: str, staging, extra_meta: dict | None = None):
        """Atomically promote a staged execution to ``cache/<key>``.

        Returns ``(entry_path, fresh)``; ``fresh`` is ``False`` when a
        concurrent execution published first (this staging is then
        discarded — first writer wins, entries are immutable).
        """
        staging = Path(staging)
        artifacts = {}
        for path in sorted(staging.rglob("*")):
            if not path.is_file():
                continue
            rel = path.relative_to(staging).as_posix()
            if rel == MANIFEST_NAME:
                continue
            sha, size = _sha256_file(path)
            artifacts[rel] = {
                "sha256": sha,
                "bytes": size,
                "deterministic": is_deterministic(rel),
            }
        manifest = {
            "format": CACHE_FORMAT,
            "schema": SPEC_SCHEMA_VERSION,
            "key": key,
            "artifacts": artifacts,
        }
        if extra_meta:
            manifest.update(extra_meta)
        with atomic_write(staging / MANIFEST_NAME) as fh:
            fh.write(canonical_json(manifest).encode("ascii"))
        # Durability before visibility: every staged byte reaches disk
        # before the rename can make the entry discoverable.
        _fsync_tree(staging)
        final = self.entry_path(key)
        with obs.phase("service.publish"):
            try:
                os.rename(staging, final)
            except OSError:
                if self.lookup(key) is not None:
                    obs.add("service.cache.race_lost")
                    self.discard(staging)
                    return final, False
                raise
            _fsync_dir(self.dir)
        obs.add("service.cache.published")
        return final, True
