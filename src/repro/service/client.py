"""Client API of the service layer: submit, wait, fetch results.

:class:`ServiceClient` talks to a service root purely through the
on-disk queue and cache — no sockets, no daemon handshake — so it works
against a live ``serve`` pool, a pool in another process, or a pool
run inline afterwards.  :func:`run_service` is the one-shot embedded
mode: submit a batch of specs and drain a pool in-process (what the
sweep-shaped workloads and the tests use).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro.service.cache import MANIFEST_NAME, ResultCache
from repro.service.queue import (
    DONE,
    FAILED,
    JobQueue,
    JobRecord,
    ServiceError,
)
from repro.service.scheduler import ServicePool
from repro.service.spec import ScenarioSpec


@dataclass
class JobResult:
    """A completed job's published artifacts."""

    job_id: str
    key: str
    #: The immutable cache entry directory.
    path: Path
    #: The entry's MANIFEST.json payload (per-file sha256 + sizes).
    manifest: dict
    #: The deterministic ``result.json`` payload.
    summary: dict

    def artifact(self, rel_path: str) -> Path:
        """Absolute path of one published artifact."""
        path = self.path / rel_path
        if not path.exists():
            raise ServiceError(
                f"job {self.job_id}: no artifact {rel_path!r} under {self.path}"
            )
        return path


class ServiceClient:
    """Handle on one service root."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.queue = JobQueue(self.root)
        self.cache = ResultCache(self.root)

    # ------------------------------------------------------------------
    # Submission and inspection
    # ------------------------------------------------------------------
    def submit(self, spec: ScenarioSpec) -> JobRecord:
        """Durably enqueue one scenario; returns its pending record."""
        return self.queue.submit(spec)

    def job(self, job_id: str) -> JobRecord:
        return self.queue.get(job_id)

    def jobs(self) -> list[JobRecord]:
        return self.queue.jobs()

    def observe_snapshot(self, job_id: str) -> dict | None:
        """The live streamed registry snapshot of a job's execution."""
        record = self.queue.get(job_id)
        path = self.root / "obs" / f"{record.key}.json"
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            # Not streamed yet (job pending) or mid-rotation; callers
            # poll, so "no snapshot right now" is an answer, not an
            # error.
            return None

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def wait(
        self,
        job_ids=None,
        *,
        timeout: float | None = None,
        poll: float = 0.05,
    ) -> list[JobRecord]:
        """Block until the given jobs (default: all) are done or failed.

        Requires a scheduler draining the root somewhere (a ``serve``
        process or another thread); raises :class:`ServiceError` on
        timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            records = (
                self.jobs()
                if job_ids is None
                else [self.queue.get(job_id) for job_id in job_ids]
            )
            if all(record.state in (DONE, FAILED) for record in records):
                return records
            if deadline is not None and time.monotonic() > deadline:
                open_ids = [
                    record.job_id
                    for record in records
                    if record.state not in (DONE, FAILED)
                ]
                raise ServiceError(
                    f"timed out waiting for job(s) {', '.join(open_ids)} "
                    "(is a scheduler serving this root?)"
                )
            time.sleep(poll)

    def result(self, job_id: str) -> JobResult:
        """The published artifacts of a completed job."""
        record = self.queue.get(job_id)
        if record.state == FAILED:
            raise ServiceError(f"job {job_id} failed: {record.error}")
        if record.state != DONE:
            raise ServiceError(f"job {job_id} is {record.state}, not done")
        entry = self.cache.lookup(record.key)
        if entry is None:
            raise ServiceError(
                f"job {job_id} is done but cache entry {record.key} is gone"
            )
        manifest = json.loads((entry / MANIFEST_NAME).read_text())
        summary = json.loads((entry / "result.json").read_text())
        return JobResult(
            job_id=job_id,
            key=record.key,
            path=entry,
            manifest=manifest,
            summary=summary,
        )


def run_service(
    root,
    specs,
    *,
    workers: int = 2,
    max_attempts: int = 3,
    target=None,
    notify=None,
) -> list[JobRecord]:
    """Submit ``specs`` and drain an inline pool; returns final records.

    The embedded one-shot mode: everything a ``submit``+``serve
    --drain`` pair does, in-process, in submission order.
    """
    client = ServiceClient(root)
    submitted = [client.submit(spec) for spec in specs]
    pool = ServicePool(
        root,
        workers=workers,
        max_attempts=max_attempts,
        target=target,
        notify=notify,
    )
    pool.run(drain=True)
    return [client.job(record.job_id) for record in submitted]
