"""Simulation-as-a-service job layer over the coupled MD-KMC driver.

The ROADMAP's "millions of users" refactor: many small parameterized
coupled runs (dose sweeps, seed ensembles, scenario studies) are
*submitted* as declarative :class:`ScenarioSpec` values instead of being
executed inline.  The layer is a directory, not a daemon framework —
every component is crash-safe plain files:

* :mod:`repro.service.spec` — the declarative scenario description and
  its canonical content hash (spec identity + schema + code version).
* :mod:`repro.service.queue` — the persistent on-disk job queue,
  journaled through :mod:`repro.io.atomic` so an accepted job is never
  lost or duplicated by a crash.
* :mod:`repro.service.cache` — the content-addressed result store:
  one published directory per spec key, staged and renamed atomically,
  so identical specs dedupe to one execution and cache hits are
  bit-exact (seeds make runs pure functions of the spec).
* :mod:`repro.service.scheduler` — :class:`ServicePool`, scheduling
  pending jobs onto a pool of forked worker processes with bounded
  crash retries.
* :mod:`repro.service.worker` — one job's execution: build the
  :class:`~repro.core.coupling.CoupledConfig` from the spec, run it
  under the PR 3 recovery supervisor, stream observe-registry
  snapshots, and stage the artifacts.
* :mod:`repro.service.client` — the embedding API
  (:class:`ServiceClient`, :func:`run_service`); the CLI ``serve`` /
  ``submit`` / ``status`` / ``result`` subcommands are thin wrappers
  over it, and ``coupled`` builds the same :class:`ScenarioSpec`.
"""

from repro.service.cache import ResultCache
from repro.service.client import JobResult, ServiceClient, run_service
from repro.service.queue import (
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    JobQueue,
    JobRecord,
    ServiceError,
)
from repro.service.scheduler import ServicePool
from repro.service.spec import SPEC_SCHEMA_VERSION, ScenarioSpec, SpecError
from repro.service.worker import execute_spec

__all__ = [
    "DONE",
    "FAILED",
    "PENDING",
    "RUNNING",
    "SPEC_SCHEMA_VERSION",
    "JobQueue",
    "JobRecord",
    "JobResult",
    "ResultCache",
    "ScenarioSpec",
    "ServiceClient",
    "ServiceError",
    "ServicePool",
    "SpecError",
    "execute_spec",
    "run_service",
]
