"""Declarative scenario description and its content-addressed key.

A :class:`ScenarioSpec` is the unit of work of the service layer: a
frozen, JSON-serializable description of one coupled MD-KMC run.  Its
fields split into two classes:

* **Identity fields** determine the published artifacts.  Seeds make a
  run a pure function of these (the determinism contract the test
  suite asserts), so the cache key is a SHA-256 over their canonical
  JSON plus the spec schema version and the code version — a new code
  release or schema change never serves stale artifacts.
* **Execution fields** (communication scheme, backend, worker count,
  fault plan, checkpoint cadence, watchdog) are routing hints: the
  scheme/backend equivalence and crash-recovery bit-identity tests
  prove they do not change results, so they are deliberately *excluded*
  from the key — a run scheduled on the process backend is a cache hit
  for the same scenario on threads, and a fault-injected run publishes
  the same artifacts as a fault-free one.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields

#: Bumped whenever the artifact layout or the meaning of a spec field
#: changes; part of every cache key.
SPEC_SCHEMA_VERSION = 1

#: Fields hashed into the cache key (with schema + code version).
IDENTITY_FIELDS = (
    "cells",
    "temperature",
    "potential",
    "table_points",
    "md_steps",
    "pka_energy",
    "kmc_max_events",
    "kmc_nranks",
    "kmc_max_cycles",
    "recombination_radius",
    "trajectory_every",
    "seed",
)

#: Routing hints, proven result-neutral — never hashed.
EXECUTION_FIELDS = (
    "kmc_scheme",
    "backend",
    "workers",
    "faults",
    "checkpoint_every",
    "watchdog",
)

_OPTIONAL_INT = ("md_steps", "kmc_nranks", "trajectory_every",
                 "checkpoint_every", "workers")
_REQUIRED_INT = ("cells", "table_points", "kmc_max_events",
                 "kmc_max_cycles", "seed")
_OPTIONAL_FLOAT = ("pka_energy", "recombination_radius", "watchdog")
_REQUIRED_FLOAT = ("temperature",)

_SCHEMES = ("traditional", "ondemand", "onesided")
_BACKENDS = ("thread", "process", "overdecomposed")
_POTENTIALS = ("fe",)


class SpecError(ValueError):
    """A scenario spec is malformed or unrepresentable."""


def canonical_json(value) -> str:
    """The canonical JSON encoding hashed into cache keys.

    Sorted keys, no whitespace, no NaN/Infinity: two specs with equal
    field values always encode to identical bytes.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """One coupled MD-KMC scenario, serializable and canonically hashable.

    Identity fields (hashed)
    ------------------------
    cells:
        Conventional cells per axis (cubic box; >= 5).
    temperature:
        System temperature in K.
    potential:
        Potential family; only ``"fe"`` today (the key leaves room for
        more without a schema bump).
    table_points:
        Interpolation table resolution.
    md_steps / pka_energy:
        MD cascade knobs; both ``None`` selects the default cascade at
        ``temperature`` (exactly the ``coupled`` CLI behaviour).
    kmc_max_events / kmc_nranks / kmc_max_cycles:
        KMC budget and engine selection (``kmc_nranks=None`` = serial).
    recombination_radius:
        Athermal Frenkel-pair recombination radius (angstrom) applied
        when mapping MD damage onto the KMC sites.
    trajectory_every:
        When set, the published artifacts include a chunked trajectory
        store recorded every N serial events / parallel cycles; the
        cadence changes the artifact, so it is part of the identity.
    seed:
        Master seed; with it, the run is a pure function of the
        identity fields.

    Execution fields (not hashed)
    -----------------------------
    kmc_scheme / backend / workers:
        How the parallel KMC world runs; bit-identical across all
        choices (asserted by the scheme/backend parity tests).
    faults / checkpoint_every / watchdog:
        Fault plan (DSL string), checkpoint cadence, and runtime
        deadline; recovery converges bit-identically, so none of them
        affects the published result.
    """

    cells: int = 8
    temperature: float = 600.0
    potential: str = "fe"
    table_points: int = 2000
    md_steps: int | None = None
    pka_energy: float | None = None
    kmc_max_events: int = 500
    kmc_nranks: int | None = None
    kmc_max_cycles: int = 50
    recombination_radius: float | None = None
    trajectory_every: int | None = None
    seed: int = 2018
    kmc_scheme: str = "ondemand"
    backend: str | None = None
    workers: int | None = None
    faults: str | None = None
    checkpoint_every: int | None = None
    watchdog: float | None = None

    def __post_init__(self) -> None:
        # Canonicalize numeric types first: the key is a hash of the
        # JSON encoding, and json renders 8 and 8.0 differently — a
        # float-typed cell count must never split the cache.
        for name in _REQUIRED_INT + _OPTIONAL_INT:
            value = getattr(self, name)
            if value is None and name in _OPTIONAL_INT:
                continue
            try:
                coerced = int(value)
            except (TypeError, ValueError) as exc:
                raise SpecError(f"{name} must be an integer, got {value!r}") from exc
            if coerced != value:
                raise SpecError(f"{name} must be an integer, got {value!r}")
            object.__setattr__(self, name, coerced)
        for name in _REQUIRED_FLOAT + _OPTIONAL_FLOAT:
            value = getattr(self, name)
            if value is None and name in _OPTIONAL_FLOAT:
                continue
            try:
                object.__setattr__(self, name, float(value))
            except (TypeError, ValueError) as exc:
                raise SpecError(f"{name} must be a number, got {value!r}") from exc
        if self.cells < 5:
            raise SpecError(
                f"cells must be >= 5 (box >= 2*(cutoff+skin)), got {self.cells}"
            )
        if self.temperature <= 0:
            raise SpecError("temperature must be positive")
        if self.potential not in _POTENTIALS:
            raise SpecError(
                f"unknown potential {self.potential!r}; choose from {_POTENTIALS}"
            )
        if self.table_points < 2:
            raise SpecError("table_points must be >= 2")
        if self.md_steps is not None and self.md_steps < 1:
            raise SpecError("md_steps must be >= 1")
        if self.pka_energy is not None and self.pka_energy <= 0:
            raise SpecError("pka_energy must be positive")
        if self.kmc_max_events < 0:
            raise SpecError("kmc_max_events must be >= 0")
        if self.kmc_nranks is not None and self.kmc_nranks < 1:
            raise SpecError("kmc_nranks must be >= 1")
        if self.kmc_max_cycles < 1:
            raise SpecError("kmc_max_cycles must be >= 1")
        if self.recombination_radius is not None and self.recombination_radius <= 0:
            raise SpecError("recombination_radius must be positive")
        if self.trajectory_every is not None and self.trajectory_every < 1:
            raise SpecError("trajectory_every must be >= 1")
        if self.kmc_scheme not in _SCHEMES:
            raise SpecError(
                f"unknown kmc_scheme {self.kmc_scheme!r}; choose from {_SCHEMES}"
            )
        if self.backend is not None and self.backend not in _BACKENDS:
            raise SpecError(
                f"unknown backend {self.backend!r}; choose from {_BACKENDS}"
            )
        if self.workers is not None and self.workers < 1:
            raise SpecError("workers must be >= 1")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise SpecError("checkpoint_every must be >= 1")
        if self.watchdog is not None and self.watchdog <= 0:
            raise SpecError("watchdog must be positive")
        if self.faults is not None:
            if not isinstance(self.faults, str):
                raise SpecError(
                    "faults must be the plan DSL string (serializable), "
                    f"got {type(self.faults).__name__}"
                )
            from repro.runtime.faults import FaultPlan, FaultPlanError

            try:
                FaultPlan.parse(self.faults)
            except FaultPlanError as exc:
                raise SpecError(f"bad faults plan: {exc}") from exc

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """All fields as a JSON-serializable dict (round-trips exactly)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> ScenarioSpec:
        """Rebuild a spec, rejecting unknown keys (schema discipline)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"unknown spec field(s): {', '.join(unknown)}")
        return cls(**data)

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    def identity(self) -> dict:
        """The hashed portion: identity fields + schema + code version."""
        import repro

        ident = {name: getattr(self, name) for name in IDENTITY_FIELDS}
        ident["schema"] = SPEC_SCHEMA_VERSION
        ident["code"] = repro.__version__
        return ident

    def key(self) -> str:
        """Content-addressed cache key (SHA-256 hex of the identity)."""
        return hashlib.sha256(
            canonical_json(self.identity()).encode("ascii")
        ).hexdigest()

    # ------------------------------------------------------------------
    # Construction of the run configuration
    # ------------------------------------------------------------------
    def to_coupled_config(
        self,
        *,
        trajectory: str | None = None,
        checkpoint_dir: str | None = None,
        sunway_model: bool = False,
    ):
        """The :class:`~repro.core.coupling.CoupledConfig` this spec means.

        Paths and profiling are per-run concerns supplied by the caller
        (the worker stages them under the cache entry; the ``coupled``
        CLI passes its flags through) — everything physical comes from
        the spec.
        """
        from repro.core.coupling import CoupledConfig
        from repro.md.cascade import CascadeConfig

        cascade = None
        if self.md_steps is not None or self.pka_energy is not None:
            kwargs = {"temperature": self.temperature}
            if self.md_steps is not None:
                kwargs["nsteps"] = self.md_steps
            if self.pka_energy is not None:
                kwargs["pka_energy"] = self.pka_energy
            cascade = CascadeConfig(**kwargs)
        return CoupledConfig(
            cells=self.cells,
            temperature=self.temperature,
            cascade=cascade,
            kmc_max_events=self.kmc_max_events,
            kmc_nranks=self.kmc_nranks,
            kmc_scheme=self.kmc_scheme,
            kmc_backend=self.backend,
            kmc_workers=self.workers,
            kmc_max_cycles=self.kmc_max_cycles,
            seed=self.seed,
            table_points=self.table_points,
            recombination_radius=self.recombination_radius,
            sunway_model=sunway_model,
            faults=self.faults,
            checkpoint_every=self.checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            watchdog=self.watchdog,
            trajectory=trajectory,
            trajectory_every=self.trajectory_every or 1,
        )
