"""One job's execution: spec in, staged content-addressed artifacts out.

:func:`execute_spec` is the pure core — build the
:class:`~repro.core.coupling.CoupledConfig` a spec means, run the
coupled driver (fault plans and recovery ride the PR 3 supervisor
inside it), and lay the artifacts out in a work directory.
:func:`run_job` is the process entry point the scheduler forks: it adds
live observability (a streamed observe-registry snapshot rewritten
atomically on every pipeline stage boundary and every few hundred
milliseconds) and publishes the staged artifacts to the cache.

A worker that dies at any instant leaves nothing but its staging
directory: publication is a single atomic rename, so the scheduler can
retry the job from scratch and the retried execution publishes
artifacts bit-identical to a fault-free run (seeds make the run a pure
function of the spec).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict
from pathlib import Path

from repro import observe as obs
from repro.io.atomic import atomic_write, atomic_write_bytes
from repro.service.cache import ResultCache
from repro.service.spec import ScenarioSpec

RESULT_FORMAT = "repro-service-result-v1"

#: Streaming cadence of the observe snapshot (seconds).
SNAPSHOT_INTERVAL = 0.25


def _dumps(payload: dict) -> str:
    # Compact + key-sorted: result.json is a deterministic artifact, so
    # equal results must encode to equal bytes.
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class SnapshotStreamer:
    """Rewrite a registry snapshot file on stage changes and on a timer.

    Purely observational: snapshots are written with ``sync=False`` (a
    torn-free atomic replace, but no fsync) so streaming never competes
    with the simulation for I/O durability.
    """

    def __init__(self, registry, path, interval: float = SNAPSHOT_INTERVAL):
        self.registry = registry
        self.path = Path(path)
        self.interval = interval
        self.stage = "starting"
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="service-snapshot", daemon=True
        )

    def __enter__(self):
        self.write()
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        self.stage = "failed" if exc_type is not None else "done"
        self.write()

    def on_stage(self, stage: str) -> None:
        """The :class:`~repro.core.coupling.CoupledSimulation` hook."""
        self.stage = stage
        self.write()

    def write(self) -> None:
        payload = self.registry.summary()
        payload["stage"] = self.stage
        payload["pid"] = os.getpid()
        try:
            atomic_write_bytes(
                self.path, (_dumps(payload) + "\n").encode(), sync=False
            )
        except OSError:
            # Snapshots are best-effort; losing one must never kill the
            # simulation — but it stays observable.
            obs.add("service.snapshot_write_errors")

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.write()


def execute_spec(spec: ScenarioSpec, workdir, *, progress=None) -> dict:
    """Run one scenario, staging the artifact layout under ``workdir``.

    Deterministic artifacts (``result.json``, the ``.npy`` damage
    states, the ``trajectory/`` store) are bit-reproducible functions
    of the spec; ``run.json`` and the final ``checkpoint/`` snapshots
    are execution metadata (they may record recoveries, and ``.npz``
    embeds zip timestamps).  Returns the ``result.json`` payload.
    """
    import numpy as np

    from repro.core.coupling import CoupledSimulation

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    trajectory = (
        str(workdir / "trajectory") if spec.trajectory_every is not None else None
    )
    checkpoint_dir = (
        str(workdir / "checkpoint") if spec.checkpoint_every is not None else None
    )
    config = spec.to_coupled_config(
        trajectory=trajectory, checkpoint_dir=checkpoint_dir
    )
    sim = CoupledSimulation(config, progress=progress)
    with obs.phase("service.execute"):
        result = sim.run()
    np.save(workdir / "vacancies_after_md.npy", result.vacancies_after_md)
    np.save(workdir / "vacancies_after_kmc.npy", result.vacancies_after_kmc)
    summary = {
        "format": RESULT_FORMAT,
        "key": spec.key(),
        "spec": spec.identity(),
        "kmc_events": result.kmc_events,
        "kmc_time_ps": result.kmc_time,
        "real_time_seconds": result.real_time_seconds,
        "vacancies_after_md": int(len(result.vacancies_after_md)),
        "vacancies_after_kmc": int(len(result.vacancies_after_kmc)),
        "clusters_after_md": asdict(result.report_after_md),
        "clusters_after_kmc": asdict(result.report_after_kmc),
        "trajectory_frames": result.trajectory_frames,
    }
    with atomic_write(workdir / "result.json") as fh:
        fh.write((_dumps(summary) + "\n").encode())
    run_meta = {
        "recoveries": result.recoveries,
        "migrations": result.migrations,
        "fault_report": result.fault_report,
        "comm_stats": result.comm_stats,
    }
    with atomic_write(workdir / "run.json") as fh:
        fh.write((_dumps(run_meta) + "\n").encode())
    return summary


def error_path_for(staging) -> Path:
    """Where :func:`run_job` reports a failure for this staging dir."""
    staging = Path(staging)
    return staging.parent / (staging.name + ".error")


def run_job(spec_dict, staging, root, obs_path=None, attempt: int = 1) -> None:
    """Process entry point: execute, stream observability, publish.

    On failure the error text lands (atomically) next to the staging
    directory for the scheduler to surface, and the nonzero exit code
    triggers the bounded-retry path.
    """
    staging = Path(staging)
    spec = ScenarioSpec.from_dict(spec_dict)
    try:
        registry = obs.enable(trace=False)
        if obs_path is not None:
            with SnapshotStreamer(registry, obs_path) as streamer:
                execute_spec(spec, staging, progress=streamer.on_stage)
                streamer.on_stage("publishing")
                ResultCache(root).publish(spec.key(), staging)
        else:
            execute_spec(spec, staging)
            ResultCache(root).publish(spec.key(), staging)
    except BaseException as exc:
        try:
            atomic_write_bytes(
                error_path_for(staging),
                f"attempt {attempt}: {type(exc).__name__}: {exc}\n".encode(),
            )
        except OSError:
            obs.add("service.error_report_failures")
        raise
