"""Whole-program symbol table and call graph for interprocedural rules.

The per-file rules (REP001-REP007) see one :class:`ModuleContext` at a
time, so an RNG draw or a collective hidden behind a helper function in
another module is invisible to them.  :class:`ProjectGraph` closes that
gap for the *statically decidable* slice of the call graph:

* module-level functions and class methods get dotted qualified names
  (``repro.kmc.comm.TraditionalExchange.before_sector``);
* ``from x import y [as z]`` re-exports are chased transitively, so a
  call through a package ``__init__`` facade resolves to the defining
  module;
* calls are resolved when the target is a plain name (local function or
  import), a dotted module attribute (``mod.func``), or a ``self``
  method of the enclosing class — attribute calls on arbitrary objects
  stay unresolved, which keeps the graph sound (no false edges) at the
  cost of completeness;
* module-level integer constants (``TAG_GET = 1000``) are collected so
  protocol tags can be compared by *value* across modules.

Everything is computed once per scan from the already-parsed module
set; no imports are executed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analyze.core import ImportMap, ModuleContext

#: Cap on import-alias chasing, so a (malformed) alias cycle terminates.
_ALIAS_DEPTH = 16


def module_dotted_name(rel_path: str) -> str:
    """Dotted module name of a posix-relative path.

    ``src/`` prefixes are dropped (the repo's layout), ``__init__.py``
    maps to its package: ``src/repro/kmc/comm.py`` -> ``repro.kmc.comm``,
    ``src/repro/observe/__init__.py`` -> ``repro.observe``.
    """
    parts = list(rel_path.split("/"))
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[:-3]
    if leaf == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = leaf
    return ".".join(parts)


@dataclass
class FunctionNode:
    """One function or method definition in the scanned program."""

    qname: str  # dotted: <module>.<Class>?.<name>
    module: ModuleContext
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: str | None = None
    #: Resolved project-internal callees (qnames), filled by the graph.
    callees: list[str] = field(default_factory=list)

    @property
    def params(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        return names


class ProjectGraph:
    """Symbol table + call graph over one scanned module set."""

    def __init__(self, modules: list[ModuleContext]) -> None:
        self.modules = list(modules)
        self.module_names: dict[str, str] = {}  # rel_path -> dotted
        self.functions: dict[str, FunctionNode] = {}  # qname -> node
        self.aliases: dict[str, str] = {}  # dotted alias -> dotted target
        self.constants: dict[str, int] = {}  # dotted name -> int value
        self.import_maps: dict[str, ImportMap] = {}  # rel_path -> map
        #: qname -> list of (caller FunctionNode, ast.Call) call sites.
        self.callers: dict[str, list[tuple[FunctionNode, ast.Call]]] = {}
        for module in self.modules:
            self._index_module(module)
        for fn in list(self.functions.values()):
            self._link_calls(fn)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _index_module(self, module: ModuleContext) -> None:
        modname = module_dotted_name(module.rel_path)
        self.module_names[module.rel_path] = modname
        self.import_maps[module.rel_path] = ImportMap(module.tree)
        for node in module.tree.body:
            self._index_stmt(module, modname, node, class_name=None)

    def _index_stmt(
        self,
        module: ModuleContext,
        modname: str,
        node: ast.stmt,
        class_name: str | None,
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = (
                f"{modname}.{class_name}.{node.name}"
                if class_name
                else f"{modname}.{node.name}"
            )
            self.functions[qual] = FunctionNode(
                qual, module, node, class_name=class_name
            )
        elif isinstance(node, ast.ClassDef) and class_name is None:
            for sub in node.body:
                self._index_stmt(module, modname, sub, class_name=node.name)
        elif isinstance(node, ast.Assign) and class_name is None:
            if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, int
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.constants[f"{modname}.{target.id}"] = (
                            node.value.value
                        )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self.aliases[f"{modname}.{local}"] = (
                    f"{node.module}.{alias.name}"
                )

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def deref(self, dotted: str) -> str:
        """Follow import re-export aliases to a canonical dotted name."""
        seen = 0
        while dotted in self.aliases and seen < _ALIAS_DEPTH:
            dotted = self.aliases[dotted]
            seen += 1
        return dotted

    def resolve_call(
        self, module: ModuleContext, call: ast.Call, class_name: str | None = None
    ) -> FunctionNode | None:
        """The project function a call statically targets, or ``None``.

        Resolves plain names (same-module functions, imported names),
        dotted module attributes, and ``self.method`` / ``cls.method``
        within ``class_name``.  Method calls on arbitrary objects are
        not resolved (unsound to guess).
        """
        modname = self.module_names.get(module.rel_path, "")
        func = call.func
        if isinstance(func, ast.Name):
            local = self.deref(f"{modname}.{func.id}")
            hit = self.functions.get(local)
            if hit is not None:
                return hit
        elif isinstance(func, ast.Attribute):
            base = func.value
            if (
                class_name is not None
                and isinstance(base, ast.Name)
                and base.id in ("self", "cls")
            ):
                hit = self.functions.get(
                    f"{modname}.{class_name}.{func.attr}"
                )
                if hit is not None:
                    return hit
        imports = self.import_maps.get(module.rel_path)
        if imports is not None:
            dotted = imports.resolve_call(call.func)
            if dotted is not None:
                return self.functions.get(self.deref(dotted))
        return None

    def resolve_constant(
        self, module: ModuleContext, expr: ast.expr
    ) -> int | None:
        """Integer value of a module-level constant reference, or ``None``.

        Handles local names (``TAG_GET``), imported names
        (``from repro.kmc.comm import TAG_GET``), and dotted attributes
        (``comm.TAG_GET``); chases re-export aliases.
        """
        modname = self.module_names.get(module.rel_path, "")
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
            return expr.value
        if isinstance(expr, ast.Name):
            local = self.deref(f"{modname}.{expr.id}")
            if local in self.constants:
                return self.constants[local]
        imports = self.import_maps.get(module.rel_path)
        if imports is not None and isinstance(expr, (ast.Name, ast.Attribute)):
            dotted = imports.resolve_call(expr)
            if dotted is not None:
                dotted = self.deref(dotted)
                if dotted in self.constants:
                    return self.constants[dotted]
        return None

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------
    def _link_calls(self, fn: FunctionNode) -> None:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                callee = self.resolve_call(
                    fn.module, node, class_name=fn.class_name
                )
                if callee is not None:
                    fn.callees.append(callee.qname)
                    self.callers.setdefault(callee.qname, []).append(
                        (fn, node)
                    )

    def iter_calls_with_owner(
        self, module: ModuleContext
    ):
        """Yield ``(call, class_name)`` for every call in ``module``.

        ``class_name`` is the enclosing class when the call sits inside
        a method body (so ``self.helper()`` resolves), else ``None``.
        """
        modname = self.module_names.get(module.rel_path, "")
        del modname

        def walk(nodes, class_name):
            for node in nodes:
                if isinstance(node, ast.ClassDef):
                    yield from walk(node.body, node.name)
                else:
                    for sub in ast.walk(node):
                        if isinstance(sub, ast.Call):
                            yield sub, class_name

        yield from walk(module.tree.body, None)

    def transitive_closure(
        self, mark: dict[str, tuple[str, ...]]
    ) -> dict[str, tuple[str, ...]]:
        """Propagate per-function marks backwards along call edges.

        ``mark`` maps qname -> evidence chain (a tuple of labels ending
        at the primal evidence).  The fixpoint adds every function that
        calls a marked function, with the callee's chain prefixed by the
        callee's qname — so each marked function carries one concrete
        witness chain from itself to the evidence.
        """
        out = dict(mark)
        changed = True
        while changed:
            changed = False
            for qname, fn in self.functions.items():
                if qname in out:
                    continue
                for callee in fn.callees:
                    if callee in out:
                        out[qname] = (callee, *out[callee])
                        changed = True
                        break
        return out
