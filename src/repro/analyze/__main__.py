"""``python -m repro.analyze`` dispatches to the analyzer CLI."""

import sys

from repro.analyze.cli import main

sys.exit(main())
