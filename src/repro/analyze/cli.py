"""``python -m repro.analyze`` — scan paths, explain rules, manage baseline.

Exit codes: 0 clean scan, 1 findings remain after suppressions, 2 usage
or configuration error (bad baseline, unknown rule).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analyze import report
from repro.analyze.baseline import (
    BaselineError,
    apply_baseline,
    entry_is_justified,
    load_baseline,
    prune_baseline,
    render_baseline,
)
from repro.analyze.core import all_rules
from repro.analyze.runner import analyze_paths

DEFAULT_BASELINE = "analyze-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description=(
            "Domain-specific static analysis: determinism, simmpi protocol "
            "discipline, numeric safety."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files/directories to scan"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write current findings as a baseline (justify by hand), exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help=(
            "drop stale entries (fingerprints no longer found) from the "
            "baseline file and exit 1 if any were stale"
        ),
    )
    parser.add_argument(
        "--rules",
        metavar="REP0xx[,REP0xx...]",
        default=None,
        help=(
            "restrict the scan to a comma-separated rule subset (scoped "
            "allowlist for tests/benchmarks scans)"
        ),
    )
    parser.add_argument(
        "--explain",
        metavar="REP0xx",
        default=None,
        help="print one rule's documentation and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    out = sys.stdout

    if args.list_rules:
        print(report.list_rules(), file=out)
        return 0
    if args.explain is not None:
        text = report.explain(args.explain)
        if text is None:
            print(f"unknown rule {args.explain!r}; --list-rules", file=sys.stderr)
            return 2
        print(text, file=out)
        return 0

    rules = None
    if args.rules is not None:
        registry = all_rules()
        wanted = [c.strip().upper() for c in args.rules.split(",") if c.strip()]
        unknown = [c for c in wanted if c not in registry]
        if unknown:
            print(
                f"unknown rule(s) {', '.join(unknown)}; --list-rules",
                file=sys.stderr,
            )
            return 2
        rules = [registry[c]() for c in wanted]

    result = analyze_paths(args.paths, rules=rules)

    if args.write_baseline is not None:
        Path(args.write_baseline).write_text(render_baseline(result.findings))
        print(
            f"wrote {len(result.findings)} suppression(s) to "
            f"{args.write_baseline} (marked 'justified': false); fill in "
            "the justifications and flip the flags — the scan fails on "
            "unjustified entries",
            file=out,
        )
        return 0

    baselined, stale, unjustified, pruned = [], [], [], []
    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).is_file():
        baseline_path = DEFAULT_BASELINE
    if baseline_path is not None and not args.no_baseline:
        try:
            entries = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result.findings, baselined, stale = apply_baseline(
            result.findings, entries
        )
        unjustified = [e for e in entries if not entry_is_justified(e)]
        if args.prune_baseline:
            pruned = prune_baseline(baseline_path, entries, stale)
            for entry in pruned:
                print(
                    "pruned stale baseline entry: "
                    f"{entry['rule']} {entry['path']} :: {entry['snippet']}",
                    file=out,
                )
            stale = []  # dropped from the file; gate on `pruned` below
    elif args.prune_baseline:
        print("error: --prune-baseline requires a baseline file", file=sys.stderr)
        return 2

    if args.format == "json":
        print(
            report.format_json(result, baselined, stale, unjustified),
            file=out,
        )
    else:
        print(
            report.format_text(result, baselined, stale, unjustified),
            file=out,
        )
    return 1 if (result.findings or unjustified or pruned) else 0
