"""REP007 — known-slow data movement on hot paths.

Two patterns this codebase has already paid to eliminate keep trying to
sneak back in:

* ``np.add.at`` — NumPy's unbuffered ufunc scatter, an order of
  magnitude slower than the ``np.bincount(..., minlength=n)`` scatters
  the force kernels use (see :mod:`repro.md.forces`).
* ``pickle.dumps`` of array payloads — the process backend moves bulk
  arrays through the shared-memory slot pool
  (:mod:`repro.runtime.shm`); a hand-rolled ``pickle.dumps`` on the
  message path serializes the bytes the transport exists to not copy.

The rule flags both in the hot directories (``md/``, ``kmc/``) and in
the process-backend transport itself.  Deliberate survivors — a scatter
whose duplicate-index accumulation order is load-bearing for
bit-identity, a pickle on an error path — belong in the committed
baseline with a written justification.
"""

from __future__ import annotations

from typing import Iterable

from repro.analyze.core import (
    Finding,
    ImportMap,
    ModuleContext,
    Rule,
    iter_calls,
    register,
)

_HOT_DIRS = ("md", "kmc")
_HOT_FILES = ("runtime/procbackend.py",)

_SLOW_CALLS = {
    "numpy.add.at": (
        "np.add.at is NumPy's unbuffered scatter (known ~10x slow); use "
        "np.bincount(..., minlength=n) unless duplicate-index accumulation "
        "order is load-bearing (then justify in the baseline)"
    ),
    "pickle.dumps": (
        "pickle.dumps on a hot path copies bytes the shared-memory "
        "transport exists to avoid; array payloads should ride the queue "
        "headers + shm slots (repro.runtime.shm)"
    ),
}


@register
class SlowDataMovementRule(Rule):
    code = "REP007"
    name = "slow-data-movement"
    summary = "np.add.at / pickle.dumps on a hot path"
    explanation = """\
``np.add.at`` inside ``md/`` or ``kmc/`` and ``pickle.dumps`` anywhere
on the process-backend message path are the two data-movement patterns
this reproduction measured and replaced: unbuffered ufunc scatters lose
an order of magnitude to ``np.bincount`` accumulation, and pickling
array payloads defeats the zero-copy shared-memory transport.

Keep a deliberate exception (duplicate-index accumulation whose order is
load-bearing for bit-identity, serialization on an error path) in the
committed baseline with a justification, or annotate it inline with
``# repro: noqa(REP007) <why this movement pattern is required>``.
"""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.in_dirs(*_HOT_DIRS) and not module.rel_path.endswith(
            _HOT_FILES
        ):
            return
        imports = ImportMap(module.tree)
        for call in iter_calls(module.tree):
            target = imports.resolve_call(call.func)
            message = _SLOW_CALLS.get(target or "")
            if message is not None:
                yield module.finding(self.code, call, message)
