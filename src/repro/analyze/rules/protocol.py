"""REP002 — simmpi protocol discipline.

Two statically visible deadlock shapes:

* a send (or recv/probe) tag that never pairs up anywhere in the
  scanned set — the receiver blocks forever;
* a collective (or window fence/put) executed only under a
  rank-conditional branch — the other ranks block in the collective.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analyze.core import Finding, ModuleContext, Rule, register

_SEND_METHODS = {"send", "isend"}
_RECV_METHODS = {"recv", "irecv", "probe", "iprobe"}

#: Methods that are collective over the whole communicator: every rank
#: must reach them or the world deadlocks.
_COLLECTIVES = {
    "barrier",
    "bcast",
    "gather",
    "allgather",
    "allreduce",
    "exchange",
    "win_create",
    "fence",
}

#: ``.put`` is only a one-sided window op when the receiver looks like a
#: window; bare ``q.put`` (queues) must not trip the rule.
_WINDOW_HINTS = ("win", "window")


def _tag_key(node: ast.expr | None):
    """A pairing key for a tag expression, or ``None`` when dynamic.

    Literal ints/strings pair by value; uppercase constants (``TAG_GET``,
    ``mod.TAG_PUT``) pair by name, including ``TAG_GET + sector`` offset
    forms which pair by their base constant.  Anything else (a computed
    tag, ``status.tag``, the ANY_TAG default) is dynamic: it may match
    any tag, so pairing is not statically decidable.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, str)):
        return ("lit", node.value)
    if isinstance(node, ast.Name) and node.id.isupper():
        return ("const", node.id)
    if (
        isinstance(node, ast.Attribute)
        and node.attr.isupper()
        and node.attr not in ("ANY_TAG", "ANY_SOURCE")
    ):
        return ("const", node.attr)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        return _tag_key(node.left)
    return None


def _call_tag(call: ast.Call) -> tuple[ast.expr | None, bool]:
    """(tag expression, present) of one send/recv/probe call."""
    for kw in call.keywords:
        if kw.arg == "tag":
            return kw.value, True
    # RankComm signatures: send(dest, tag, payload), recv(source, tag),
    # probe(source, tag) — the tag is the second positional argument.
    if len(call.args) >= 2:
        return call.args[1], True
    return None, False


def _mentions_rank(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "rank":
            return True
        if isinstance(node, ast.Name) and node.id == "rank":
            return True
    return False


def _collective_name(call: ast.Call) -> str | None:
    if not isinstance(call.func, ast.Attribute):
        return None
    name = call.func.attr
    if name in _COLLECTIVES:
        return name
    if name == "put":
        recv = call.func.value
        text = ""
        if isinstance(recv, ast.Name):
            text = recv.id
        elif isinstance(recv, ast.Attribute):
            text = recv.attr
        if any(h in text.lower() for h in _WINDOW_HINTS):
            return "put"
    return None


def _collectives_in(nodes: list[ast.stmt]) -> set[str]:
    names: set[str] = set()
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                name = _collective_name(node)
                if name is not None:
                    names.add(name)
    return names


@register
class ProtocolRule(Rule):
    code = "REP002"
    name = "simmpi-protocol"
    summary = (
        "unpaired send/recv tag, or collective call under a rank-conditional "
        "branch"
    )
    explanation = """\
simmpi point-to-point messages pair by tag; collectives require every
rank to participate.  Two shapes are statically rejectable:

1. Tag pairing (cross-module): tag keys are collected from every
   ``.send``/``.isend`` and ``.recv``/``.probe`` in the scanned set.
   Literal tags pair by value, uppercase constants (``TAG_GET``, also in
   ``TAG_GET + sector`` offset form) pair by base name.  A send tag with
   no matching receive anywhere (and vice versa) is flagged — unless a
   dynamic tag (``status.tag``, the ANY_TAG default) appears on the
   other side, which makes pairing statically undecidable and mutes the
   check for that direction.

2. Rank-conditional collectives (per module): ``barrier``/``bcast``/
   ``gather``/``allreduce``/``exchange``/``win_create``/``fence`` (and
   ``<win>.put``) reached only under ``if rank == ...`` deadlock the
   other ranks.  A collective in one branch is accepted when the
   opposite branch calls the *same* collective (the root/leaf bcast
   idiom).

``repro/runtime/`` is exempt: it *implements* the transport, so its
internals legitimately branch on rank.  Suppress elsewhere with
``# repro: noqa(REP002) <why every rank reaches this call>``.
"""

    def __init__(self) -> None:
        self._sends: dict[tuple, Finding] = {}
        self._recvs: dict[tuple, Finding] = {}
        self._dynamic_send = False
        self._dynamic_recv = False

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if module.in_dirs("runtime"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                method = node.func.attr
                if method in _SEND_METHODS:
                    tag, present = _call_tag(node)
                    if not present:
                        continue  # not a simmpi send (pipes, sockets)
                    key = _tag_key(tag)
                    if key is None:
                        self._dynamic_send = True
                    else:
                        self._sends.setdefault(
                            key,
                            module.finding(
                                self.code,
                                node,
                                f"send tag {key[1]!r} has no matching "
                                "recv/probe anywhere in the scanned paths",
                            ),
                        )
                elif method in _RECV_METHODS:
                    tag, present = _call_tag(node)
                    if not present:
                        self._dynamic_recv = True  # ANY_TAG default
                        continue
                    key = _tag_key(tag)
                    if key is None:
                        self._dynamic_recv = True
                    else:
                        self._recvs.setdefault(
                            key,
                            module.finding(
                                self.code,
                                node,
                                f"recv/probe tag {key[1]!r} has no matching "
                                "send anywhere in the scanned paths",
                            ),
                        )
            if isinstance(node, ast.If) and _mentions_rank(node.test):
                yield from self._check_branch(module, node.body, node.orelse)
                yield from self._check_branch(module, node.orelse, node.body)

    def _check_branch(
        self, module: ModuleContext, branch: list[ast.stmt], other: list[ast.stmt]
    ) -> Iterable[Finding]:
        other_names = _collectives_in(other)
        for stmt in branch:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    name = _collective_name(node)
                    if name is not None and name not in other_names:
                        yield module.finding(
                            self.code,
                            node,
                            f"collective '{name}' under a rank-conditional "
                            "branch: ranks not taking this branch will "
                            "deadlock in the collective",
                        )

    def finalize(self) -> Iterable[Finding]:
        if not self._dynamic_recv:
            for key, finding in sorted(self._sends.items(), key=lambda kv: str(kv[0])):
                if key not in self._recvs:
                    yield finding
        if not self._dynamic_send:
            for key, finding in sorted(self._recvs.items(), key=lambda kv: str(kv[0])):
                if key not in self._sends:
                    yield finding
