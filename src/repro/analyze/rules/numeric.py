"""REP003 — float equality comparisons in physics code.

The repo's equivalence tests assert *bit identity* via explicit helpers
(``np.array_equal``, ULP diffs); an inline ``x == 1.5`` in physics code
is either a tolerance check in disguise or an unstated bit-identity
claim.  Both deserve an explicit spelling.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analyze.core import Finding, ModuleContext, Rule, register

_PHYSICS_DIRS = ("md", "kmc", "core", "potential", "lattice")


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # -1.5 parses as UnaryOp(USub, Constant(1.5))
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


@register
class FloatEqualityRule(Rule):
    code = "REP003"
    name = "float-equality"
    summary = "== / != against a float literal in physics code"
    explanation = """\
Floating-point ``==``/``!=`` against a literal inside ``md/``, ``kmc/``,
``core/``, ``potential/`` or ``lattice/`` hides intent: a bit-identity
claim should say ``np.array_equal(a, b)`` (or compare ULPs); a tolerance
check should say ``np.isclose``/``math.isclose``; an exact sentinel
(e.g. a rate slot that is *stored* as exactly 0.0 and only ever assigned
exact values) should be annotated so the reader knows rounding cannot
reach it.

Suppress deliberate exact-value sentinels with
``# repro: noqa(REP003) <why rounding can never produce this value>``.
"""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.in_dirs(*_PHYSICS_DIRS):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(
                node.ops, operands[:-1], operands[1:], strict=True
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    sym = "==" if isinstance(op, ast.Eq) else "!="
                    yield module.finding(
                        self.code,
                        node,
                        f"float literal compared with {sym} in physics code; "
                        "use np.isclose / np.array_equal (or annotate the "
                        "exact sentinel)",
                    )
