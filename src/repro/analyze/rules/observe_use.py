"""REP006 — observe phase misuse.

``obs.phase("name")`` returns a context manager; calling it as a bare
statement times nothing and silently records nothing.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analyze.core import Finding, ModuleContext, Rule, register


@register
class BarePhaseRule(Rule):
    code = "REP006"
    name = "bare-phase-call"
    summary = "phase(...) called as a statement instead of `with phase(...)`"
    explanation = """\
``repro.observe.phase(name)`` only *returns* a timing context manager —
the timer starts at ``__enter__`` and records at ``__exit__``.  A bare
``obs.phase("md.force")`` statement discards the manager: the phase
never appears in reports or traces, and the instrumentation looks
present while measuring nothing.  Write ``with obs.phase("md.force"):``
around the timed region.
"""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
                continue
            func = node.value.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else None
            )
            if name == "phase":
                yield module.finding(
                    self.code,
                    node,
                    "bare phase(...) call discards the context manager and "
                    "times nothing; use `with ... phase(...):`",
                )
