"""REP004/REP005 — failure paths that vanish or swallow.

Library-code ``assert`` disappears under ``python -O``; a broad
``except Exception`` that neither re-raises nor logs converts failures
into silent wrong answers — fatal for a code whose selling point is
reproducibility.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analyze.core import Finding, ModuleContext, Rule, register

#: Call leaf names accepted as "the failure was recorded somewhere".
_LOGGING_LEAVES = {
    "add",
    "critical",
    "debug",
    "error",
    "exception",
    "info",
    "log",
    "note",
    "print",
    "record",
    "set_gauge",
    "warn",
    "warning",
}

_BROAD = {"Exception", "BaseException"}


def _leaf_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_broad(handler_type: ast.expr | None) -> bool:
    if handler_type is None:  # bare except:
        return True
    nodes: list[ast.expr] = (
        list(handler_type.elts)
        if isinstance(handler_type, ast.Tuple)
        else [handler_type]
    )
    for node in nodes:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _BROAD:
            return True
    return False


def _handler_is_accounted(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                leaf = _leaf_name(node.func)
                if leaf in _LOGGING_LEAVES:
                    return True
    return False


@register
class LibraryAssertRule(Rule):
    code = "REP004"
    name = "library-assert"
    summary = "bare assert in library code (vanishes under python -O)"
    explanation = """\
``assert`` statements are compiled out under ``python -O``, so a
library-code self-check guarded by one silently stops checking exactly
when someone turns on optimizations for a large run.  Validate inputs
with an explicit ``raise ValueError(...)`` (or move the check into
``tests/``, where asserts are the native idiom and -O is never used).

Suppress with ``# repro: noqa(REP004) <why -O semantics are acceptable>``.
"""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if module.in_dirs("tests", "benchmarks"):
            return  # asserts are the native idiom in test code
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield module.finding(
                    self.code,
                    node,
                    "bare assert in library code is removed by python -O; "
                    "raise ValueError/RuntimeError explicitly",
                )


@register
class SilentExceptRule(Rule):
    code = "REP005"
    name = "silent-broad-except"
    summary = "broad except without re-raise or logging"
    explanation = """\
``except Exception`` (or a bare ``except:``) whose body neither
re-raises nor records the failure turns every unexpected bug — a typo,
a numpy shape error, a corrupted message — into a silently wrong
simulation.  Either catch the specific exceptions the operation can
raise, re-raise after cleanup, or record the failure (``obs.add``
counter, logging call) so the run is auditable.

Boundary code that must transport arbitrary failures across
threads/processes (worker loops that capture-and-forward) is the
legitimate broad-catch case: baseline it with a justification rather
than sprinkling pragmas.
"""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and _is_broad(node.type):
                if not _handler_is_accounted(node):
                    caught = (
                        "bare except"
                        if node.type is None
                        else f"except {ast.unparse(node.type)}"
                    )
                    yield module.finding(
                        self.code,
                        node,
                        f"{caught} neither re-raises nor records the "
                        "failure; narrow it, re-raise, or log via "
                        "repro.observe",
                    )
