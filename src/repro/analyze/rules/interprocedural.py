"""REP008/REP009 — whole-program rules over the project call graph.

Both rules run in ``check_project`` against a
:class:`repro.analyze.graph.ProjectGraph`; they exist to catch exactly
the violations the per-file rules structurally cannot:

* REP008: an unseeded-RNG draw or wall-clock read that happens inside a
  helper function — possibly in a non-physics module, possibly with its
  own REP001 pragma — and *flows into physics code* through a call
  chain.
* REP009: simmpi protocol ops whose tag is a function *parameter*
  (invisible to REP002's per-call tag keys), resolved to concrete tag
  values at every call site; and collectives reached through helper
  calls under rank-conditional branches.  Findings carry the full call
  chain.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analyze.core import Finding, ModuleContext, Rule, register
from repro.analyze.rules.determinism import _PHYSICS_DIRS, classify_nondet_source
from repro.analyze.rules.protocol import (
    _RECV_METHODS,
    _SEND_METHODS,
    _call_tag,
    _collective_name,
    _collectives_in,
    _mentions_rank,
)

#: Modules whose internals may legitimately read clocks (timers live
#: here by design); taint never originates in, nor propagates through,
#: these — otherwise every ``obs.phase`` in physics code would flag.
_TRUSTED_PREFIXES = ("repro.observe",)


def _is_trusted(modname: str) -> bool:
    return any(
        modname == p or modname.startswith(p + ".") for p in _TRUSTED_PREFIXES
    )


def _chain_text(head: str, chain: tuple[str, ...]) -> str:
    return " -> ".join((head, *chain))


@register
class InterproceduralTaintRule(Rule):
    code = "REP008"
    name = "cross-function-nondeterminism"
    summary = (
        "call chain from physics code reaches an unseeded-RNG or "
        "wall-clock source in another function"
    )
    explanation = """\
REP001 flags nondeterminism sources at the line that executes them, one
file at a time.  That misses the interprocedural shape: a helper in a
non-physics module reads ``time.time()`` (legal there under REP001) or
draws from the global RNG under a local pragma, and physics code in
``md/``, ``kmc/`` or ``core/`` calls the helper — the nondeterministic
value still flows into trajectories.

REP008 builds the project call graph, marks every function that
executes a REP001-class source (global-state RNG anywhere, wall-clock
anywhere outside the trusted ``repro.observe`` timing layer), closes
the marking backwards over resolved call edges, and flags each call
site in a physics module whose resolved target is marked.  The finding
message carries the witness chain down to the primal source, e.g.::

    repro.util.jitter -> wall-clock read time.time (src/repro/util.py:12)

Only statically resolved calls participate (plain names, imported
functions, ``self.`` methods), so the rule is sound over the decidable
slice of the graph.  Suppress with
``# repro: noqa(REP008) <why this value never reaches trajectories>``.
"""

    def check_project(self, graph) -> Iterable[Finding]:
        marks: dict[str, tuple[str, ...]] = {}
        for qname, fn in graph.functions.items():
            modname = graph.module_names.get(fn.module.rel_path, "")
            if _is_trusted(modname):
                continue
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                imports = graph.import_maps.get(fn.module.rel_path)
                target = imports.resolve_call(node.func) if imports else None
                if target is None:
                    continue
                desc = classify_nondet_source(graph.deref(target))
                if desc is not None:
                    marks[qname] = (
                        f"{desc} ({fn.module.rel_path}:{node.lineno})",
                    )
                    break
        tainted = graph.transitive_closure(marks)
        # Trusted modules absorb taint: a chain that passes through
        # repro.observe is a timing concern, not a physics one.
        for qname in list(tainted):
            fn = graph.functions.get(qname)
            if fn is None:
                continue
            if _is_trusted(graph.module_names.get(fn.module.rel_path, "")):
                del tainted[qname]

        for module in graph.modules:
            if not module.in_dirs(*_PHYSICS_DIRS):
                continue
            for call, class_name in graph.iter_calls_with_owner(module):
                callee = graph.resolve_call(module, call, class_name=class_name)
                if callee is None or callee.qname not in tainted:
                    continue
                chain = _chain_text(callee.qname, tainted[callee.qname])
                yield module.finding(
                    self.code,
                    call,
                    "call chain from physics code reaches a nondeterminism "
                    f"source: {chain}; thread a seeded Generator (or a "
                    "pre-read timestamp) through instead",
                )


def _value_key(graph, module: ModuleContext, expr: ast.expr | None):
    """Value-level pairing key for a tag expression, or ``None``.

    Constants resolve to their integer *value* across modules (so
    ``TAG_GET`` pairs with a literal ``1000`` and with
    ``comm.TAG_GET``); offset forms ``BASE + sector`` pair by base
    value, mirroring REP002's name-level treatment.  Uppercase names
    with no known value fall back to name pairing; everything else is
    dynamic (``None``).
    """
    if expr is None:
        return None
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, (ast.Add, ast.Sub)):
        return _value_key(graph, module, expr.left)
    value = graph.resolve_constant(module, expr)
    if value is not None:
        return ("val", value)
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return ("val", expr.value)
    if isinstance(expr, ast.Name) and expr.id.isupper():
        return ("const", expr.id)
    if (
        isinstance(expr, ast.Attribute)
        and expr.attr.isupper()
        and expr.attr not in ("ANY_TAG", "ANY_SOURCE")
    ):
        return ("const", expr.attr)
    return None


def _tag_param(expr: ast.expr | None, params: list[str]) -> str | None:
    """The function parameter a tag expression is built from, if any."""
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, (ast.Add, ast.Sub)):
        return _tag_param(expr.left, params)
    if isinstance(expr, ast.Name) and expr.id in params:
        return expr.id
    return None


@register
class InterproceduralProtocolRule(Rule):
    code = "REP009"
    name = "cross-function-protocol"
    summary = (
        "parameterised send/recv tag unpaired after call-site resolution, "
        "or rank-conditional call chain into a collective"
    )
    explanation = """\
REP002 pairs send/recv tags per call expression, so a helper that takes
the tag as a parameter (``def ship(comm, dest, tag, x): comm.send(dest,
tag, x)``) looks dynamic and silently mutes the whole check; and a
collective buried inside a helper called under ``if rank == 0`` is
invisible to the per-file branch check.

REP009 resolves both through the project call graph:

1. Parameterised tags: for every send/recv/probe whose tag expression
   is a function parameter, each resolved call site substitutes its
   argument and the tag is resolved to a concrete *value* via the
   project-wide constant table (``TAG_GET = 1000`` pairs with a literal
   ``1000``; ``BASE + sector`` offset forms pair by base value).  A
   substituted send value with no matching recv/probe anywhere — and
   vice versa — is flagged at the call site, with the call chain and
   resolved value in the message.  As in REP002, a genuinely dynamic
   tag on the opposite side (``status.tag``) mutes that direction.

2. Rank-conditional collective reachability: functions that execute a
   collective (directly or transitively) are computed by fixpoint; a
   call under an ``if ...rank...`` branch that resolves into that set is
   flagged with the chain to the collective, unless the opposite branch
   reaches the same collective (the root/leaf bcast idiom).

``repro/runtime/`` is exempt (it implements the transport).  Suppress
elsewhere with ``# repro: noqa(REP009) <why this pairs/every rank
reaches it>``.
"""

    def check_project(self, graph) -> Iterable[Finding]:
        direct_send_keys: set = set()
        direct_recv_keys: set = set()
        # (key, finding) for ops whose tag came from a parameter.
        sub_sends: list[tuple[object, Finding]] = []
        sub_recvs: list[tuple[object, Finding]] = []
        dynamic_send = False
        dynamic_recv = False

        for fn in graph.functions.values():
            if fn.module.in_dirs("runtime"):
                continue
            for call in ast.walk(fn.node):
                if not (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                ):
                    continue
                method = call.func.attr
                if method in _SEND_METHODS:
                    is_send = True
                elif method in _RECV_METHODS:
                    is_send = False
                else:
                    continue
                tag, present = _call_tag(call)
                if not present:
                    if not is_send:
                        dynamic_recv = True  # ANY_TAG default
                    continue
                param = _tag_param(tag, fn.params)
                if param is not None:
                    subs, any_dynamic = self._substitute(
                        graph, fn, call, method, param, is_send
                    )
                    if is_send:
                        sub_sends.extend(subs)
                        dynamic_send |= any_dynamic
                    else:
                        sub_recvs.extend(subs)
                        dynamic_recv |= any_dynamic
                    continue
                key = _value_key(graph, fn.module, tag)
                if key is None:
                    if is_send:
                        dynamic_send = True
                    else:
                        dynamic_recv = True
                elif is_send:
                    direct_send_keys.add(key)
                else:
                    direct_recv_keys.add(key)

        send_keys = direct_send_keys | {k for k, _ in sub_sends}
        recv_keys = direct_recv_keys | {k for k, _ in sub_recvs}
        if not dynamic_recv:
            for key, finding in sub_sends:
                if key not in recv_keys:
                    yield finding
        if not dynamic_send:
            for key, finding in sub_recvs:
                if key not in send_keys:
                    yield finding

        yield from self._check_rank_branches(graph)

    # ------------------------------------------------------------------
    # Parameterised tag substitution
    # ------------------------------------------------------------------
    def _substitute(
        self, graph, fn, op_call: ast.Call, method: str, param: str, is_send: bool
    ) -> tuple[list[tuple[object, Finding]], bool]:
        """Resolve one parameterised op at every call site of ``fn``.

        Returns ``(substituted entries, saw_dynamic_argument)``.
        """
        idx = fn.params.index(param)
        if fn.class_name is not None and fn.params and fn.params[0] in (
            "self",
            "cls",
        ):
            idx -= 1  # resolved self.method() calls pass no receiver
        entries: list[tuple[object, Finding]] = []
        any_dynamic = False
        direction = "send" if is_send else "recv/probe"
        opposite = "recv/probe" if is_send else "send"
        for caller, site in graph.callers.get(fn.qname, []):
            arg: ast.expr | None = None
            for kw in site.keywords:
                if kw.arg == param:
                    arg = kw.value
                    break
            if arg is None and 0 <= idx < len(site.args):
                arg = site.args[idx]
            key = _value_key(graph, caller.module, arg)
            if key is None:
                any_dynamic = True
                continue
            value = key[1]
            entries.append(
                (
                    key,
                    caller.module.finding(
                        self.code,
                        site,
                        f"{direction} tag {value!r} (via parameter "
                        f"'{param}' of {fn.qname}.{method}: "
                        f"{_chain_text(caller.qname, (fn.qname,))}) has no "
                        f"matching {opposite} anywhere in the scanned paths",
                    ),
                )
            )
        return entries, any_dynamic

    # ------------------------------------------------------------------
    # Rank-conditional collective reachability
    # ------------------------------------------------------------------
    def _collective_closure(self, graph) -> dict[str, dict[str, tuple[str, ...]]]:
        """qname -> {collective name -> witness chain} by fixpoint."""
        reach: dict[str, dict[str, tuple[str, ...]]] = {}
        for qname, fn in graph.functions.items():
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    name = _collective_name(node)
                    if name is not None:
                        reach.setdefault(qname, {}).setdefault(
                            name,
                            (f"{name}() ({fn.module.rel_path}:{node.lineno})",),
                        )
        changed = True
        while changed:
            changed = False
            for qname, fn in graph.functions.items():
                mine = reach.setdefault(qname, {})
                for callee in fn.callees:
                    for cname, chain in reach.get(callee, {}).items():
                        if cname not in mine:
                            mine[cname] = (callee, *chain)
                            changed = True
        return {q: c for q, c in reach.items() if c}

    def _check_rank_branches(self, graph) -> Iterator[Finding]:
        reach = self._collective_closure(graph)

        def branch_reach(
            module: ModuleContext, nodes: list[ast.stmt], class_name: str | None
        ) -> set[str]:
            names = set(_collectives_in(nodes))
            for stmt in nodes:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call):
                        callee = graph.resolve_call(
                            module, node, class_name=class_name
                        )
                        if callee is not None:
                            names |= set(reach.get(callee.qname, {}))
            return names

        for module in graph.modules:
            if module.in_dirs("runtime"):
                continue
            for branch_if, class_name in self._rank_ifs(module):
                for body, other in (
                    (branch_if.body, branch_if.orelse),
                    (branch_if.orelse, branch_if.body),
                ):
                    other_names = branch_reach(module, other, class_name)
                    for stmt in body:
                        for node in ast.walk(stmt):
                            if not isinstance(node, ast.Call):
                                continue
                            callee = graph.resolve_call(
                                module, node, class_name=class_name
                            )
                            if callee is None:
                                continue
                            for cname, chain in sorted(
                                reach.get(callee.qname, {}).items()
                            ):
                                if cname in other_names:
                                    continue
                                yield module.finding(
                                    self.code,
                                    node,
                                    "call chain under a rank-conditional "
                                    f"branch reaches collective '{cname}': "
                                    f"{_chain_text(callee.qname, chain)}; "
                                    "ranks not taking this branch will "
                                    "deadlock",
                                )

    @staticmethod
    def _rank_ifs(
        module: ModuleContext,
    ) -> Iterator[tuple[ast.If, str | None]]:
        """Every ``if`` whose test mentions a rank, with class context."""

        def walk(nodes: list[ast.stmt], class_name: str | None):
            for node in nodes:
                if isinstance(node, ast.ClassDef):
                    yield from walk(node.body, node.name)
                    continue
                for sub in ast.walk(node):
                    if isinstance(sub, ast.If) and _mentions_rank(sub.test):
                        yield sub, class_name

        yield from walk(module.tree.body, None)
