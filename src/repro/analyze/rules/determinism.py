"""REP001 — hidden nondeterminism.

Trajectory bit-identity across communication schemes and backends (the
paper's §2.2/§4 equivalence claims) requires randomness to be a pure
function of (seed, rank, cycle, sector).  Global-state RNG calls and
wall-clock reads inside physics code both break that contract.
"""

from __future__ import annotations

from typing import Iterable

from repro.analyze.core import (
    Finding,
    ImportMap,
    ModuleContext,
    Rule,
    iter_calls,
    register,
)

#: numpy.random attributes that are *allowed*: explicit seeded
#: constructors.  Everything else on numpy.random is the legacy
#: global-state API (np.random.seed / rand / choice / ...).
_NUMPY_ALLOWED = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: stdlib ``random`` attributes that are allowed (seedable instances).
_STDLIB_ALLOWED = {"Random", "SystemRandom"}

#: Wall-clock reads; forbidden in physics paths (timers belong in
#: ``repro.observe``, which is allowlisted by virtue of not being a
#: physics directory).
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.clock_gettime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: Directories whose code computes physics and must be clock-free.
_PHYSICS_DIRS = ("md", "kmc", "core")


def classify_nondet_source(target: str) -> str | None:
    """Short description of a REP001-class source call, or ``None``.

    Shared with REP008: given a canonical dotted call target, return
    ``"global-state RNG <target>"`` / ``"wall-clock read <target>"`` when
    the call is a nondeterminism source, independent of location (the
    caller decides whether the location makes it a violation).
    """
    if target.startswith("numpy.random."):
        leaf = target.split(".")[2]
        if leaf not in _NUMPY_ALLOWED:
            return f"global-state RNG {target}"
    elif target.startswith("random."):
        leaf = target.split(".")[1]
        if leaf not in _STDLIB_ALLOWED:
            return f"global-state RNG {target}"
    elif target in _WALL_CLOCK:
        return f"wall-clock read {target}"
    return None


@register
class NondeterminismRule(Rule):
    code = "REP001"
    name = "hidden-nondeterminism"
    summary = (
        "global-state RNG call, or wall-clock read inside md/, kmc/, core/ "
        "physics code"
    )
    explanation = """\
Bit-identical parallel AKMC (the equivalence the scheme and backend
tests assert) requires every random draw to be reproducible from
(seed, rank, cycle, sector).  Two statically detectable hazards break
this:

1. Global-state RNG: ``np.random.seed()``, ``np.random.rand()``,
   ``random.random()`` and friends share hidden mutable state, so the
   draw depends on call *order* — which differs across schemes, rank
   counts and backends.  Use seeded ``numpy.random.Generator`` streams
   (see ``repro.kmc.rng``: ``sector_rng(seed, rank, cycle, sector)``)
   or a seeded ``random.Random(seed)`` instance.  Flagged everywhere.

2. Wall-clock reads in physics code: ``time.time()``,
   ``time.perf_counter()``, ``datetime.now()`` inside ``md/``, ``kmc/``
   or ``core/`` feed real time into trajectories.  Timing belongs in
   ``repro.observe`` phases; ``runtime/`` and ``observe/`` are outside
   the physics dirs and therefore allowlisted.

Suppress with ``# repro: noqa(REP001) <why this draw is reproducible>``.
"""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        imports = ImportMap(module.tree)
        in_physics = module.in_dirs(*_PHYSICS_DIRS)
        for call in iter_calls(module.tree):
            target = imports.resolve_call(call.func)
            if target is None:
                continue
            if target.startswith("numpy.random."):
                leaf = target.split(".")[2]
                if leaf not in _NUMPY_ALLOWED:
                    yield module.finding(
                        self.code,
                        call,
                        f"global-state RNG call numpy.random.{leaf}; use a "
                        "seeded Generator (repro.kmc.rng.sector_rng)",
                    )
            elif target.startswith("random."):
                leaf = target.split(".")[1]
                if leaf not in _STDLIB_ALLOWED:
                    yield module.finding(
                        self.code,
                        call,
                        f"global-state RNG call random.{leaf}; use a seeded "
                        "random.Random or numpy Generator",
                    )
            elif in_physics and target in _WALL_CLOCK:
                yield module.finding(
                    self.code,
                    call,
                    f"wall-clock read {target}() in physics code; time "
                    "physics via repro.observe phases instead",
                )
