"""Rule plugins; importing this package registers every rule."""

from repro.analyze.rules import (
    determinism,
    interprocedural,
    numeric,
    observe_use,
    perf,
    protocol,
    robustness,
)
