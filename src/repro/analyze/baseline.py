"""Committed-baseline support.

A baseline entry acknowledges one existing violation with a written
justification, so the scan can gate on *new* findings while the
acknowledged ones stay visible in review.  Entries match findings by
(rule, path, source-line snippet) — line numbers drift, stripped source
lines rarely do.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analyze.core import Finding


class BaselineError(ValueError):
    """Malformed baseline file (schema, or missing justification)."""


#: Placeholder justification emitted by ``--write-baseline``.
TODO_JUSTIFICATION = "TODO: justify this suppression"


def entry_is_justified(entry: dict) -> bool:
    """Whether a baseline entry carries a real, human-written justification.

    Freshly written entries are marked ``"justified": false`` and keep
    the placeholder text; both signals must be cleared by hand (write
    the actual reason *and* flip the flag / drop it) before the entry
    counts as justified — so a generated baseline can never silently
    pass CI.  Historical entries without the flag default to justified.
    """
    if entry.get("justified", True) is False:
        return False
    return entry["justification"].strip() != TODO_JUSTIFICATION


def load_baseline(path: str | Path) -> list[dict]:
    """Parse and validate a baseline file."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    entries = data.get("suppressions") if isinstance(data, dict) else None
    if not isinstance(entries, list):
        raise BaselineError(
            f"baseline {path} must be an object with a 'suppressions' list"
        )
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise BaselineError(f"baseline entry {i} is not an object")
        for field in ("rule", "path", "snippet", "justification"):
            if not isinstance(entry.get(field), str) or not entry[field].strip():
                raise BaselineError(
                    f"baseline entry {i} needs a non-empty '{field}' "
                    "(every suppression must be justified)"
                )
    return entries


def apply_baseline(
    findings: list[Finding], entries: list[dict]
) -> tuple[list[Finding], list[Finding], list[dict]]:
    """Split findings into (kept, baselined) and return stale entries.

    An entry suppresses every finding sharing its (rule, path, snippet);
    entries that match nothing are *stale* and reported so the baseline
    shrinks as violations get fixed.
    """
    index = {(e["rule"], e["path"], e["snippet"]): e for e in entries}
    kept: list[Finding] = []
    baselined: list[Finding] = []
    used: set[tuple] = set()
    for finding in findings:
        if finding.fingerprint in index:
            used.add(finding.fingerprint)
            baselined.append(finding)
        else:
            kept.append(finding)
    stale = [e for key, e in index.items() if key not in used]
    return kept, baselined, stale


_BASELINE_COMMENT = (
    "Acknowledged repro.analyze findings.  Every entry must carry a "
    "real justification and 'justified': true; unjustified and "
    "stale entries are reported by the scan and fail it."
)


def render_entries(entries: list[dict]) -> str:
    """A baseline document holding ``entries`` verbatim."""
    doc = {"comment": _BASELINE_COMMENT, "suppressions": entries}
    return json.dumps(doc, indent=2) + "\n"


def render_baseline(findings: list[Finding]) -> str:
    """A baseline document acknowledging ``findings`` (justify by hand)."""
    entries = [
        {
            "rule": f.rule,
            "path": f.path,
            "snippet": f.snippet,
            "justification": TODO_JUSTIFICATION,
            "justified": False,
        }
        for f in sorted(set(findings), key=Finding.sort_key)
    ]
    return render_entries(entries)


def prune_baseline(
    path: str | Path, entries: list[dict], stale: list[dict]
) -> list[dict]:
    """Rewrite ``path`` without the stale entries; return what was dropped.

    Matching is by fingerprint (rule, path, snippet), so duplicates of a
    stale fingerprint are dropped together.  The file is only rewritten
    when something was actually stale.
    """
    stale_keys = {(e["rule"], e["path"], e["snippet"]) for e in stale}
    kept = [
        e
        for e in entries
        if (e["rule"], e["path"], e["snippet"]) not in stale_keys
    ]
    dropped = [e for e in entries if e not in kept]
    if dropped:
        Path(path).write_text(render_entries(kept))
    return dropped
