"""Text and JSON reporters for scan results."""

from __future__ import annotations

import json
from collections import Counter

from repro.analyze.core import Finding, all_rules
from repro.analyze.runner import AnalysisResult


def format_text(
    result: AnalysisResult,
    baselined: list[Finding],
    stale_baseline: list[dict],
    unjustified: list[dict] = (),
) -> str:
    lines: list[str] = []
    for f in result.findings:
        lines.append(f"{f.path}:{f.line}:{f.col + 1}: {f.rule} {f.message}")
        if f.snippet:
            lines.append(f"    {f.snippet}")
    if stale_baseline:
        lines.append("")
        lines.append("stale baseline entries (fixed? remove them):")
        for entry in stale_baseline:
            lines.append(
                f"  {entry['rule']} {entry['path']}: {entry['snippet'][:60]}"
            )
    if unjustified:
        lines.append("")
        lines.append(
            "unjustified baseline entries (write a justification and set "
            "'justified': true):"
        )
        for entry in unjustified:
            lines.append(
                f"  {entry['rule']} {entry['path']}: {entry['snippet'][:60]}"
            )
    lines.append("")
    by_rule = Counter(f.rule for f in result.findings)
    summary = ", ".join(f"{rule}={n}" for rule, n in sorted(by_rule.items()))
    lines.append(
        f"{result.files_scanned} files scanned: "
        f"{len(result.findings)} finding(s)"
        + (f" ({summary})" if summary else "")
        + (f", {len(baselined)} baselined" if baselined else "")
        + (
            f", {len(result.suppressed)} noqa-suppressed"
            if result.suppressed
            else ""
        )
    )
    return "\n".join(lines)


def as_json(
    result: AnalysisResult,
    baselined: list[Finding],
    stale_baseline: list[dict],
    unjustified: list[dict] = (),
) -> dict:
    return {
        "version": 1,
        "files_scanned": result.files_scanned,
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in baselined],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "stale_baseline": stale_baseline,
        "unjustified_baseline": list(unjustified),
        "counts": dict(Counter(f.rule for f in result.findings)),
    }


def format_json(
    result: AnalysisResult,
    baselined: list[Finding],
    stale_baseline: list[dict],
    unjustified: list[dict] = (),
) -> str:
    return json.dumps(
        as_json(result, baselined, stale_baseline, unjustified), indent=2
    )


def explain(code: str) -> str | None:
    """The long-form documentation of one rule, or ``None``."""
    rules = all_rules()
    cls = rules.get(code.upper())
    if cls is None:
        return None
    header = f"{cls.code} ({cls.name}): {cls.summary}"
    return f"{header}\n\n{cls.explanation}"


def list_rules() -> str:
    rows = [f"{cls.code}  {cls.name:<24} {cls.summary}" for cls in all_rules().values()]
    return "\n".join(rows)
