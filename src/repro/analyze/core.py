"""Framework core: findings, rule registry, pragmas, import resolution.

A :class:`Rule` sees one :class:`ModuleContext` at a time via
``check_module`` and may keep cross-module state that it flushes in
``finalize`` (used by the protocol rule to pair send/recv tags across
the whole scanned set).  Rules are *instantiated per run*, so state
never leaks between invocations.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Iterable, Iterator

#: ``# repro: noqa`` (blanket) or ``# repro: noqa(REP001,REP003)``; any
#: trailing text is the justification and is encouraged.
NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\(([A-Za-z0-9 ,]*)\))?")


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a source location."""

    rule: str
    path: str  # posix-style path relative to the scan root
    line: int
    col: int
    message: str
    snippet: str = ""

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-free identity used for baseline matching."""
        return (self.rule, self.path, self.snippet)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }


class ModuleContext:
    """One parsed source file plus location/classification helpers."""

    def __init__(self, rel_path: str, source: str, tree: ast.Module):
        self.rel_path = rel_path.replace("\\", "/")
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.parts = PurePosixPath(self.rel_path).parts

    def in_dirs(self, *names: str) -> bool:
        """Whether any path component matches one of ``names``."""
        return any(part in names for part in self.parts)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule, self.rel_path, line, col, message, self.snippet(line))


class Rule:
    """Base class: subclass, set the class attributes, register."""

    code: str = "REP000"
    name: str = "unnamed"
    summary: str = ""
    explanation: str = ""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_project(self, graph) -> Iterable[Finding]:
        """Whole-program findings, given a ``ProjectGraph`` over the scan.

        Called once per run, after every ``check_module`` and before
        ``finalize``.  Per-file rules ignore it; the interprocedural
        rules (REP008/REP009) do their whole work here.
        """
        return ()

    def finalize(self) -> Iterable[Finding]:
        """Cross-module findings, called once after every module."""
        return ()


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.code in _REGISTRY and _REGISTRY[cls.code] is not cls:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    """Registered rules by code; importing the plugins on first use."""
    import repro.analyze.rules  # noqa: F401 - registration side effect

    return dict(sorted(_REGISTRY.items()))


def suppressed_codes(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> suppressed rule codes on that line.

    An empty frozenset means a blanket ``# repro: noqa`` suppressing
    every rule on the line.
    """
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), 1):
        m = NOQA_RE.search(line)
        if m is None:
            continue
        codes = m.group(1)
        if codes is None:
            out[lineno] = frozenset()
        else:
            out[lineno] = frozenset(
                c.strip().upper() for c in codes.split(",") if c.strip()
            )
    return out


#: Simple (non-compound) statements whose ``# repro: noqa`` on the first
#: physical line extends over the whole statement.  Compound statements
#: (def/if/for/with/...) are deliberately excluded: a pragma on a
#: ``def`` line must not blanket-suppress the entire body.
_SIMPLE_STMTS = (
    ast.Expr,
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
)


def expand_statement_pragmas(
    tree: ast.Module, pragmas: dict[int, frozenset[str]]
) -> dict[int, frozenset[str]]:
    """Extend pragmas on multi-line simple statements to every line.

    A ``# repro: noqa(REP0xx)`` on the first line of a multi-line call
    must suppress findings anchored to *any* physical line of that
    statement (an argument on line 3 carries the call's ``lineno`` of
    the argument node, not the statement head).  Codes are unioned with
    any pragma already on the inner line; a blanket pragma (empty set)
    on either side wins.
    """
    out = dict(pragmas)
    for node in ast.walk(tree):
        if not isinstance(node, _SIMPLE_STMTS):
            continue
        end = getattr(node, "end_lineno", None)
        if end is None or end <= node.lineno:
            continue
        head = pragmas.get(node.lineno)
        if head is None:
            continue
        for line in range(node.lineno + 1, end + 1):
            existing = out.get(line)
            if existing is None:
                out[line] = head
            elif not head or not existing:
                out[line] = frozenset()  # blanket suppression wins
            else:
                out[line] = existing | head
    return out


def is_suppressed(finding: Finding, pragmas: dict[int, frozenset[str]]) -> bool:
    codes = pragmas.get(finding.line)
    if codes is None:
        return False
    return not codes or finding.rule in codes


class ImportMap:
    """Resolve local call names to canonical dotted module paths.

    Built from a module's import statements, so ``np.random.rand`` and
    ``from numpy import random as r; r.rand`` both resolve to
    ``numpy.random.rand``.  Unresolvable roots (locals, attributes of
    arbitrary objects) resolve to ``None``.
    """

    def __init__(self, tree: ast.Module):
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    canon = alias.name if alias.asname else alias.name.split(".")[0]
                    self.names[local] = canon
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve_call(self, func: ast.expr) -> str | None:
        """Canonical dotted path of a call target, or ``None``."""
        attrs: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.names.get(node.id)
        if base is None:
            return None
        return ".".join([base, *reversed(attrs)])


def iter_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node
