"""Domain-specific static analysis for the repro codebase.

The simulation's headline claims — bit-identical trajectories across
communication schemes and execution backends — rest on invariants that
runtime tests can only sample: all randomness flows through seeded
Generators, simmpi send/recv protocols pair up, float bit-identity is
asserted explicitly, and failures are never silently swallowed.  This
package checks those invariants *statically*, before a single test runs.

Usage::

    python -m repro.analyze src              # scan, exit 1 on findings
    python -m repro.analyze --explain REP001 # rule documentation
    python -m repro.analyze src --format json

Findings are suppressed either inline (``# repro: noqa(REP003)`` with a
trailing justification) or via a committed baseline file
(``analyze-baseline.json``) whose entries must carry a justification.
"""

from repro.analyze.core import Finding, ModuleContext, Rule, all_rules, register
from repro.analyze.runner import AnalysisResult, analyze_paths

__all__ = [
    "AnalysisResult",
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "analyze_paths",
    "register",
]
