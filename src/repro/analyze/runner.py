"""Scan driver: collect files, run rules, apply pragmas and baseline."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analyze.core import (
    Finding,
    ModuleContext,
    Rule,
    all_rules,
    expand_statement_pragmas,
    is_suppressed,
    suppressed_codes,
)

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "node_modules"}


@dataclass
class AnalysisResult:
    """Everything one scan produced, before baseline application."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)  # via pragmas
    files_scanned: int = 0


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths``, stably ordered."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            out.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    out.append(sub)
    seen: set[Path] = set()
    unique = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def analyze_paths(
    paths: list[str | Path],
    rules: list[Rule] | None = None,
    root: str | Path | None = None,
) -> AnalysisResult:
    """Run every rule over every python file under ``paths``.

    ``root`` anchors the relative paths used in findings (and therefore
    in baseline entries); it defaults to the current directory so a scan
    from the repo root produces ``src/repro/...`` paths.
    """
    if rules is None:
        rules = [cls() for cls in all_rules().values()]
    root = Path(root) if root is not None else Path.cwd()
    result = AnalysisResult()
    raw: list[tuple[Finding, dict[int, frozenset[str]]]] = []
    pragma_by_path: dict[str, dict[int, frozenset[str]]] = {}
    modules: list[ModuleContext] = []

    for path in iter_python_files(paths):
        rel = _rel(path, root)
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            raw.append(
                (Finding("REP000", rel, 1, 0, f"cannot parse: {exc}", ""), {})
            )
            continue
        result.files_scanned += 1
        module = ModuleContext(rel, source, tree)
        modules.append(module)
        pragmas = expand_statement_pragmas(tree, suppressed_codes(source))
        pragma_by_path[rel] = pragmas
        for rule in rules:
            for finding in rule.check_module(module):
                raw.append((finding, pragmas))

    # Whole-program pass: one symbol table + call graph over every
    # parsed module feeds the interprocedural rules.
    from repro.analyze.graph import ProjectGraph

    graph = ProjectGraph(modules)
    for rule in rules:
        for finding in rule.check_project(graph):
            raw.append((finding, pragma_by_path.get(finding.path, {})))

    # Cross-module findings (e.g. tag pairing) surface here; look their
    # pragmas up by path so an inline noqa still applies.
    for rule in rules:
        for finding in rule.finalize():
            raw.append((finding, pragma_by_path.get(finding.path, {})))

    seen: set[tuple] = set()
    for finding, pragmas in raw:
        key = (*finding.fingerprint, finding.line, finding.col, finding.message)
        if key in seen:
            continue
        seen.add(key)
        if is_suppressed(finding, pragmas):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    result.findings.sort(key=Finding.sort_key)
    result.suppressed.sort(key=Finding.sort_key)
    return result
