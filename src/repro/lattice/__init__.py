"""Body-centered-cubic lattice substrate.

Provides the BCC geometry used by both the MD and KMC engines: site
indexing (the "rank order" of the paper's lattice neighbor list), periodic
boxes, neighbor-shell offset tables, and the 3-D domain decomposition used
to scale across (simulated) processes.
"""

from repro.lattice.bcc import BCCLattice, NeighborOffsets
from repro.lattice.box import Box
from repro.lattice.domain import DomainDecomposition, Subdomain

__all__ = [
    "BCCLattice",
    "Box",
    "DomainDecomposition",
    "NeighborOffsets",
    "Subdomain",
]
