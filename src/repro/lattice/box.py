"""Periodic orthorhombic simulation box.

All simulations in the paper use fully periodic boundaries over a box
commensurate with the BCC lattice.  :class:`Box` provides coordinate
wrapping and minimum-image displacement, both vectorized.
"""

from __future__ import annotations

import numpy as np


class Box:
    """A periodic orthorhombic box anchored at the origin.

    Parameters
    ----------
    lengths:
        Box edge lengths ``(Lx, Ly, Lz)`` in angstrom.
    """

    def __init__(self, lengths) -> None:
        lengths = np.asarray(lengths, dtype=float)
        if lengths.shape != (3,):
            raise ValueError(f"lengths must have shape (3,), got {lengths.shape}")
        if np.any(lengths <= 0):
            raise ValueError(f"box lengths must be positive, got {lengths}")
        self.lengths = lengths

    @classmethod
    def for_lattice(cls, lattice) -> "Box":
        """The periodic box commensurate with a :class:`BCCLattice`."""
        return cls(lattice.lengths)

    @property
    def volume(self) -> float:
        """Box volume in cubic angstrom."""
        return float(np.prod(self.lengths))

    def wrap(self, pos: np.ndarray) -> np.ndarray:
        """Wrap positions into ``[0, L)`` along each axis.

        ``np.mod`` of a tiny negative coordinate rounds to exactly ``L``;
        the final fold guards that boundary so the half-open invariant
        really holds.
        """
        pos = np.asarray(pos, dtype=float)
        wrapped = np.mod(pos, self.lengths)
        return np.where(wrapped >= self.lengths, 0.0, wrapped)

    def minimum_image(self, delta: np.ndarray) -> np.ndarray:
        """Minimum-image convention applied to displacement vectors."""
        delta = np.asarray(delta, dtype=float)
        return delta - self.lengths * np.rint(delta / self.lengths)

    def distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Minimum-image distances between positions ``a`` and ``b``."""
        d = self.minimum_image(np.asarray(b, dtype=float) - np.asarray(a, dtype=float))
        return np.linalg.norm(d, axis=-1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Box(lengths={self.lengths.tolist()})"
