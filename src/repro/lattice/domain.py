"""3-D domain decomposition of the BCC cell grid.

Both MD and KMC use "standard domain decomposition to equally partition the
simulation box" (paper §2): the grid of conventional cells is split over a
Cartesian grid of processes, each process owning one box-shaped subdomain
plus a shell of *ghost* cells mirrored from its neighbors.

The unit of decomposition is the conventional cell (2 sites), so sites are
never split between processes and the paper's static site indexing works
unchanged inside each subdomain.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.lattice.bcc import BCCLattice

#: The 26 nonzero neighbor directions of a 3-D Cartesian decomposition.
DIRECTIONS: tuple[tuple[int, int, int], ...] = tuple(
    d for d in product((-1, 0, 1), repeat=3) if d != (0, 0, 0)
)


def split_range(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous near-equal pieces.

    The first ``n % parts`` pieces get one extra element, matching the
    usual block distribution of MPI codes.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if n < parts:
        raise ValueError(f"cannot split {n} cells into {parts} parts")
    base, extra = divmod(n, parts)
    bounds = []
    lo = 0
    for p in range(parts):
        hi = lo + base + (1 if p < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def choose_grid(nprocs: int, cells: tuple[int, int, int]) -> tuple[int, int, int]:
    """Pick a process grid ``(px, py, pz)`` with ``px*py*pz == nprocs``.

    Chooses the factorization minimizing subdomain surface-to-volume (the
    same heuristic MPI_Dims_create applies), subject to each axis having at
    least one cell per process.
    """
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    best = None
    best_score = None
    for px in range(1, nprocs + 1):
        if nprocs % px:
            continue
        rest = nprocs // px
        for py in range(1, rest + 1):
            if rest % py:
                continue
            pz = rest // py
            if px > cells[0] or py > cells[1] or pz > cells[2]:
                continue
            # Surface area of a subdomain, in cell units.
            sx = cells[0] / px
            sy = cells[1] / py
            sz = cells[2] / pz
            score = sx * sy + sy * sz + sx * sz
            if best_score is None or score < best_score:
                best_score = score
                best = (px, py, pz)
    if best is None:
        raise ValueError(
            f"no valid process grid for nprocs={nprocs} over cells={cells}"
        )
    return best


def _cells_to_ranks(lattice: BCCLattice, ci, cj, ck) -> np.ndarray:
    """Site ranks (both basis sites) of the given cells, flattened."""
    ci = np.asarray(ci).ravel()
    cj = np.asarray(cj).ravel()
    ck = np.asarray(ck).ravel()
    r0 = lattice.rank_of(np.zeros_like(ci), ci, cj, ck)
    r1 = lattice.rank_of(np.ones_like(ci), ci, cj, ck)
    return np.concatenate([r0, r1])


@dataclass(frozen=True)
class Subdomain:
    """One process's share of the cell grid.

    ``cell_lo``/``cell_hi`` are half-open cell ranges along each axis in
    *global* (unwrapped) cell coordinates.
    """

    proc: tuple[int, int, int]
    cell_lo: tuple[int, int, int]
    cell_hi: tuple[int, int, int]

    @property
    def shape(self) -> tuple[int, int, int]:
        """Subdomain extent in cells along each axis."""
        return tuple(h - l for l, h in zip(self.cell_lo, self.cell_hi, strict=True))

    @property
    def ncells(self) -> int:
        sx, sy, sz = self.shape
        return sx * sy * sz

    @property
    def nsites(self) -> int:
        return 2 * self.ncells

    def contains_cell(self, i: int, j: int, k: int) -> bool:
        """Whether global cell (i, j, k) is owned by this subdomain."""
        return all(
            l <= c < h for c, l, h in zip((i, j, k), self.cell_lo, self.cell_hi, strict=True)
        )

    def _axis_range(self, axis: int, d: int, width: int, kind: str) -> range:
        lo, hi = self.cell_lo[axis], self.cell_hi[axis]
        if kind == "send":
            if d == 0:
                return range(lo, hi)
            if d > 0:
                return range(hi - width, hi)
            return range(lo, lo + width)
        # kind == "recv": ghost cells just outside the boundary.
        if d == 0:
            return range(lo, hi)
        if d > 0:
            return range(hi, hi + width)
        return range(lo - width, lo)

    def _block(self, direction, width: int, kind: str):
        rx = self._axis_range(0, direction[0], width, kind)
        ry = self._axis_range(1, direction[1], width, kind)
        rz = self._axis_range(2, direction[2], width, kind)
        return np.meshgrid(list(rx), list(ry), list(rz), indexing="ij")

    def send_cells(self, direction, width: int):
        """Owned cells within ``width`` of the face(s) toward ``direction``.

        These are the cells whose sites must be shipped to the neighbor at
        ``direction`` so that neighbor's ghost shell is current.
        """
        self._check_width(width)
        return self._block(direction, width, "send")

    def ghost_cells(self, direction, width: int):
        """Ghost cells of this subdomain lying toward ``direction``.

        Returned in *global unwrapped* coordinates (may be < 0 or >= grid
        size); callers wrap via the lattice's periodic indexing.
        """
        self._check_width(width)
        return self._block(direction, width, "recv")

    def _check_width(self, width: int) -> None:
        if width < 1:
            raise ValueError(f"ghost width must be >= 1, got {width}")
        if any(width > s for s in self.shape):
            raise ValueError(
                f"ghost width {width} exceeds subdomain shape {self.shape}"
            )

    def owned_cell_arrays(self):
        """Meshgrid arrays of all owned cells."""
        return np.meshgrid(
            np.arange(self.cell_lo[0], self.cell_hi[0]),
            np.arange(self.cell_lo[1], self.cell_hi[1]),
            np.arange(self.cell_lo[2], self.cell_hi[2]),
            indexing="ij",
        )

    def owned_site_ranks(self, lattice: BCCLattice) -> np.ndarray:
        """Global site ranks of all sites owned by this subdomain."""
        ci, cj, ck = self.owned_cell_arrays()
        return np.sort(_cells_to_ranks(lattice, ci, cj, ck))

    def send_site_ranks(self, lattice: BCCLattice, direction, width: int) -> np.ndarray:
        """Site ranks to pack for the neighbor at ``direction``."""
        ci, cj, ck = self.send_cells(direction, width)
        return np.sort(_cells_to_ranks(lattice, ci, cj, ck))

    def ghost_site_ranks(self, lattice: BCCLattice, direction, width: int) -> np.ndarray:
        """Site ranks of this subdomain's ghost shell toward ``direction``."""
        ci, cj, ck = self.ghost_cells(direction, width)
        return np.sort(_cells_to_ranks(lattice, ci, cj, ck))

    def all_ghost_site_ranks(self, lattice: BCCLattice, width: int) -> np.ndarray:
        """Unique site ranks of the full ghost shell (all 26 directions).

        Computed as one vectorized sweep over the dilated bounding box
        minus the owned interior (equivalent to unioning the 26
        directional blocks, but one meshgrid instead of 26).
        """
        self._check_width(width)
        ci, cj, ck = np.meshgrid(
            np.arange(self.cell_lo[0] - width, self.cell_hi[0] + width),
            np.arange(self.cell_lo[1] - width, self.cell_hi[1] + width),
            np.arange(self.cell_lo[2] - width, self.cell_hi[2] + width),
            indexing="ij",
        )
        interior = (
            (ci >= self.cell_lo[0])
            & (ci < self.cell_hi[0])
            & (cj >= self.cell_lo[1])
            & (cj < self.cell_hi[1])
            & (ck >= self.cell_lo[2])
            & (ck < self.cell_hi[2])
        )
        shell = ~interior
        return np.unique(
            _cells_to_ranks(lattice, ci[shell], cj[shell], ck[shell])
        )

    def sectors(self) -> list["Subdomain"]:
        """Split into the 8 Shim-Amar sectors (2 x 2 x 2 halves).

        KMC processes sectors sequentially so that concurrently-active
        regions on different processes are never adjacent (paper Figure 7).
        Axes with only one cell cannot be halved; such axes keep a single
        sector slab, so degenerate subdomains yield fewer than 8 sectors.
        """
        axis_splits = []
        for axis in range(3):
            lo, hi = self.cell_lo[axis], self.cell_hi[axis]
            if hi - lo >= 2:
                mid = (lo + hi) // 2
                axis_splits.append([(lo, mid), (mid, hi)])
            else:
                axis_splits.append([(lo, hi)])
        out = []
        for (xl, xh), (yl, yh), (zl, zh) in product(*axis_splits):
            out.append(
                Subdomain(
                    proc=self.proc,
                    cell_lo=(xl, yl, zl),
                    cell_hi=(xh, yh, zh),
                )
            )
        return out


class DomainDecomposition:
    """Cartesian decomposition of a :class:`BCCLattice` over processes.

    Parameters
    ----------
    lattice:
        The global lattice.
    grid:
        Process grid ``(px, py, pz)``; use :func:`choose_grid` to pick one.
    """

    def __init__(self, lattice: BCCLattice, grid: tuple[int, int, int]) -> None:
        px, py, pz = grid
        if px < 1 or py < 1 or pz < 1:
            raise ValueError(f"process grid must be positive, got {grid}")
        self.lattice = lattice
        self.grid = (int(px), int(py), int(pz))
        self._bounds_x = split_range(lattice.nx, px)
        self._bounds_y = split_range(lattice.ny, py)
        self._bounds_z = split_range(lattice.nz, pz)

    @property
    def nprocs(self) -> int:
        px, py, pz = self.grid
        return px * py * pz

    def proc_coords(self, rank: int) -> tuple[int, int, int]:
        """Process grid coordinates of linear process ``rank`` (row-major)."""
        px, py, pz = self.grid
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"process rank {rank} out of range")
        pz_i = rank % pz
        rest = rank // pz
        py_i = rest % py
        px_i = rest // py
        return (px_i, py_i, pz_i)

    def proc_rank(self, coords) -> int:
        """Inverse of :meth:`proc_coords`, with periodic wrapping."""
        px, py, pz = self.grid
        cx, cy, cz = (coords[0] % px, coords[1] % py, coords[2] % pz)
        return (cx * py + cy) * pz + cz

    def subdomain(self, rank: int) -> Subdomain:
        """The :class:`Subdomain` owned by linear process ``rank``."""
        cx, cy, cz = self.proc_coords(rank)
        (xlo, xhi) = self._bounds_x[cx]
        (ylo, yhi) = self._bounds_y[cy]
        (zlo, zhi) = self._bounds_z[cz]
        return Subdomain(
            proc=(cx, cy, cz), cell_lo=(xlo, ylo, zlo), cell_hi=(xhi, yhi, zhi)
        )

    def subdomains(self) -> list[Subdomain]:
        """All subdomains in process-rank order."""
        return [self.subdomain(r) for r in range(self.nprocs)]

    def owner_of_cell(self, i: int, j: int, k: int) -> int:
        """Linear rank of the process owning global cell ``(i, j, k)``."""
        i %= self.lattice.nx
        j %= self.lattice.ny
        k %= self.lattice.nz
        cx = _owner_index(self._bounds_x, i)
        cy = _owner_index(self._bounds_y, j)
        cz = _owner_index(self._bounds_z, k)
        return self.proc_rank((cx, cy, cz))

    def owner_of_site(self, site_rank: int) -> int:
        """Linear rank of the process owning a global site."""
        _b, i, j, k = self.lattice.coords_of(site_rank)
        return self.owner_of_cell(int(i), int(j), int(k))

    def neighbor_rank(self, rank: int, direction) -> int:
        """Linear rank of the neighbor of ``rank`` toward ``direction``."""
        cx, cy, cz = self.proc_coords(rank)
        return self.proc_rank((cx + direction[0], cy + direction[1], cz + direction[2]))

    def ghost_width_cells(self, cutoff: float) -> int:
        """Ghost shell width in cells needed to cover ``cutoff`` angstrom."""
        import math

        return max(1, int(math.ceil(cutoff / self.lattice.a)))


def _owner_index(bounds: list[tuple[int, int]], c: int) -> int:
    for idx, (lo, hi) in enumerate(bounds):
        if lo <= c < hi:
            return idx
    raise ValueError(f"cell coordinate {c} outside decomposition bounds")
