"""Body-centered cubic lattice geometry and site indexing.

A BCC crystal is represented as a simple-cubic grid of *conventional cells*
with a two-site basis: basis 0 at the cell corner, basis 1 at the cell
center (Figure 1 of the paper).  Site coordinates are

    pos(b, i, j, k) = (i + b/2, j + b/2, k + b/2) * a

with the lattice constant ``a`` and periodic images along all axes.

Sites carry a dense integer *rank* that orders them by spatial location —
the storage order of the paper's lattice neighbor list (Figure 2).  The
rank layout interleaves the two basis sites of a cell so spatially adjacent
sites stay adjacent in memory:

    rank(b, i, j, k) = ((i * ny + j) * nz + k) * 2 + b

Because every site of a given basis sees the *same* pattern of neighbors,
the neighbor ranks of any site can be computed from a static offset table
(:class:`NeighborOffsets`) — no per-atom neighbor storage is required.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
import math

import numpy as np

from repro.constants import FE_LATTICE_CONSTANT

#: Cell-offset patterns of the first BCC neighbor shell (8 sites at
#: distance sqrt(3)/2 * a).  From a basis-0 site the 8 first neighbors are
#: basis-1 sites of this cell and the cells at -1 along each axis subset.
_FIRST_SHELL_FROM_CORNER = [
    (1, di, dj, dk) for di in (0, -1) for dj in (0, -1) for dk in (0, -1)
]
#: From a basis-1 (center) site the 8 first neighbors are basis-0 sites of
#: this cell and the cells at +1 along each axis subset.
_FIRST_SHELL_FROM_CENTER = [
    (0, di, dj, dk) for di in (0, 1) for dj in (0, 1) for dk in (0, 1)
]

#: Second shell: 6 same-basis sites at distance a.
_SECOND_SHELL = [
    (0, 1, 0, 0),
    (0, -1, 0, 0),
    (0, 0, 1, 0),
    (0, 0, -1, 0),
    (0, 0, 0, 1),
    (0, 0, 0, -1),
]


@dataclass(frozen=True)
class NeighborOffsets:
    """Static per-basis neighbor offset tables for a cutoff radius.

    ``corner`` and ``center`` are integer arrays of shape ``(m, 4)`` whose
    rows are ``(db, di, dj, dk)``: the *relative* basis flip and cell
    displacement from a central site of basis 0 / basis 1 respectively to
    each neighbor within the cutoff.  ``distances`` hold the corresponding
    geometric distances in units of the lattice constant.
    """

    corner: np.ndarray
    center: np.ndarray
    corner_distances: np.ndarray
    center_distances: np.ndarray
    cutoff: float

    def for_basis(self, basis: int) -> np.ndarray:
        """Offset rows for a central site of the given basis (0 or 1)."""
        if basis == 0:
            return self.corner
        if basis == 1:
            return self.center
        raise ValueError(f"basis must be 0 or 1, got {basis}")

    @property
    def max_count(self) -> int:
        """Largest neighbor count over the two bases."""
        return max(len(self.corner), len(self.center))


class BCCLattice:
    """A periodic BCC lattice of ``nx * ny * nz`` conventional cells.

    Parameters
    ----------
    nx, ny, nz:
        Number of conventional cells along each axis (>= 1).
    a:
        Lattice constant in angstrom.
    """

    def __init__(
        self,
        nx: int,
        ny: int,
        nz: int,
        a: float = FE_LATTICE_CONSTANT,
    ) -> None:
        for name, n in (("nx", nx), ("ny", ny), ("nz", nz)):
            if n < 1:
                raise ValueError(f"{name} must be >= 1, got {n}")
        if a <= 0:
            raise ValueError(f"lattice constant must be positive, got {a}")
        self.nx = int(nx)
        self.ny = int(ny)
        self.nz = int(nz)
        self.a = float(a)

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def ncells(self) -> int:
        """Number of conventional cells."""
        return self.nx * self.ny * self.nz

    @property
    def nsites(self) -> int:
        """Number of lattice sites (2 per conventional cell)."""
        return 2 * self.ncells

    @property
    def lengths(self) -> np.ndarray:
        """Periodic box lengths in angstrom, shape (3,)."""
        return np.array([self.nx, self.ny, self.nz], dtype=float) * self.a

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BCCLattice(nx={self.nx}, ny={self.ny}, nz={self.nz}, "
            f"a={self.a}, nsites={self.nsites})"
        )

    # ------------------------------------------------------------------
    # Rank <-> (basis, cell) <-> coordinates
    # ------------------------------------------------------------------
    def rank_of(self, b, i, j, k):
        """Dense site rank for basis ``b`` and cell ``(i, j, k)``.

        Cell indices are wrapped periodically, so any integers are valid.
        Accepts scalars or equal-shaped integer arrays.
        """
        b = np.asarray(b)
        i = np.mod(np.asarray(i), self.nx)
        j = np.mod(np.asarray(j), self.ny)
        k = np.mod(np.asarray(k), self.nz)
        if np.any((b != 0) & (b != 1)):
            raise ValueError("basis index must be 0 or 1")
        return ((i * self.ny + j) * self.nz + k) * 2 + b

    def coords_of(self, rank):
        """Inverse of :meth:`rank_of`: ``(b, i, j, k)`` for each rank."""
        rank = np.asarray(rank)
        if np.any(rank < 0) or np.any(rank >= self.nsites):
            raise ValueError("site rank out of range")
        b = rank % 2
        cell = rank // 2
        k = cell % self.nz
        cell //= self.nz
        j = cell % self.ny
        i = cell // self.ny
        return b, i, j, k

    def position_of(self, rank) -> np.ndarray:
        """Cartesian positions (angstrom) of sites; shape ``rank.shape + (3,)``."""
        b, i, j, k = self.coords_of(rank)
        half = 0.5 * np.asarray(b, dtype=float)
        return np.stack(
            [
                (np.asarray(i, dtype=float) + half) * self.a,
                (np.asarray(j, dtype=float) + half) * self.a,
                (np.asarray(k, dtype=float) + half) * self.a,
            ],
            axis=-1,
        )

    def all_positions(self) -> np.ndarray:
        """Positions of every site in rank order, shape ``(nsites, 3)``."""
        return self.position_of(np.arange(self.nsites))

    def nearest_site(self, pos: np.ndarray):
        """Rank of the lattice site nearest to each Cartesian position.

        This is the operation the paper performs to link a run-away atom to
        its nearest lattice point (Figure 3).  ``pos`` has shape ``(..., 3)``.
        """
        pos = np.asarray(pos, dtype=float)
        scaled = pos / self.a
        # Candidate corner site (round to integer grid) and candidate center
        # site (round to half-integer grid); pick the closer of the two.
        corner_cell = np.rint(scaled).astype(int)
        center_cell = np.floor(scaled).astype(int)
        d_corner = np.linalg.norm(scaled - corner_cell, axis=-1)
        d_center = np.linalg.norm(scaled - (center_cell + 0.5), axis=-1)
        use_center = d_center < d_corner
        b = np.where(use_center, 1, 0)
        cell = np.where(use_center[..., None], center_cell, corner_cell)
        return self.rank_of(b, cell[..., 0], cell[..., 1], cell[..., 2])

    # ------------------------------------------------------------------
    # Neighbor shells and static offset tables
    # ------------------------------------------------------------------
    def first_shell_ranks(self, rank) -> np.ndarray:
        """Ranks of the 8 first-shell neighbors of each site.

        These are the candidate vacancy-exchange partners of the KMC model
        ("eight possible events for a vacancy").  Output shape is
        ``rank.shape + (8,)``.
        """
        b, i, j, k = self.coords_of(np.asarray(rank))
        out_shape = np.shape(rank) + (8,)
        result = np.empty(out_shape, dtype=np.int64)
        corner = np.asarray(_FIRST_SHELL_FROM_CORNER)
        center = np.asarray(_FIRST_SHELL_FROM_CENTER)
        for idx in range(8):
            use = np.where(np.asarray(b) == 0, 0, 1)
            off_b = np.where(use == 0, corner[idx, 0], center[idx, 0])
            off_i = np.where(use == 0, corner[idx, 1], center[idx, 1])
            off_j = np.where(use == 0, corner[idx, 2], center[idx, 2])
            off_k = np.where(use == 0, corner[idx, 3], center[idx, 3])
            result[..., idx] = self.rank_of(off_b, i + off_i, j + off_j, k + off_k)
        return result

    def second_shell_ranks(self, rank) -> np.ndarray:
        """Ranks of the 6 second-shell (same basis) neighbors of each site."""
        b, i, j, k = self.coords_of(np.asarray(rank))
        result = np.empty(np.shape(rank) + (6,), dtype=np.int64)
        for idx, (_db, di, dj, dk) in enumerate(_SECOND_SHELL):
            result[..., idx] = self.rank_of(b, i + di, j + dj, k + dk)
        return result

    def offsets_within(self, cutoff: float) -> NeighborOffsets:
        """Static neighbor offset table for all sites within ``cutoff`` (A).

        This is the heart of the lattice neighbor list: because the crystal
        is periodic and perfect, the set of ``(db, di, dj, dk)`` offsets is
        identical for every central site of a given basis, so the neighbor
        *indexes* of any atom follow from arithmetic rather than storage.
        """
        if cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        return _offsets_within_cached(round(cutoff / self.a, 12))

    def neighbor_ranks_within(self, rank, cutoff: float) -> np.ndarray:
        """Neighbor ranks within ``cutoff`` for scalar site ``rank``."""
        offsets = self.offsets_within(cutoff)
        b, i, j, k = self.coords_of(int(rank))
        rows = offsets.for_basis(int(b))
        nb = np.where(rows[:, 0] == 0, b, 1 - b)
        return self.rank_of(nb, i + rows[:, 1], j + rows[:, 2], k + rows[:, 3])

    def shell_distances(self, nshells: int = 4) -> list[float]:
        """Geometric distances (A) of the first ``nshells`` neighbor shells."""
        dists = sorted(
            {
                round(d, 10)
                for d in _candidate_distances(reach=4)
                if d > 0
            }
        )
        return [d * self.a for d in dists[:nshells]]


def _candidate_distances(reach: int):
    """All site-to-site distances (units of a) within a +-reach cell block."""
    for db in (0, 1):
        for di in range(-reach, reach + 1):
            for dj in range(-reach, reach + 1):
                for dk in range(-reach, reach + 1):
                    yield math.sqrt(
                        (di + 0.5 * db) ** 2
                        + (dj + 0.5 * db) ** 2
                        + (dk + 0.5 * db) ** 2
                    )


@lru_cache(maxsize=32)
def _offsets_within_cached(cutoff_in_a: float) -> NeighborOffsets:
    """Compute per-basis offset tables for a cutoff given in units of ``a``."""
    reach = int(math.ceil(cutoff_in_a)) + 1
    corner_rows: list[tuple[int, int, int, int]] = []
    corner_d: list[float] = []
    center_rows: list[tuple[int, int, int, int]] = []
    center_d: list[float] = []
    for db in (0, 1):
        for di in range(-reach, reach + 1):
            for dj in range(-reach, reach + 1):
                for dk in range(-reach, reach + 1):
                    # Displacement from a basis-0 center to (db, d) site:
                    # (d + db/2) in units of a.
                    d0 = math.sqrt(
                        (di + 0.5 * db) ** 2
                        + (dj + 0.5 * db) ** 2
                        + (dk + 0.5 * db) ** 2
                    )
                    if 0 < d0 <= cutoff_in_a + 1e-12:
                        corner_rows.append((db, di, dj, dk))
                        corner_d.append(d0)
                    # Displacement from a basis-1 center to a site with
                    # basis flip db (target basis = 1 - db if db==1 else 1):
                    # target basis b2 = 1 - db_flag where db_flag means flip.
                    # Using relative convention: db=0 same basis, db=1 flip.
                    d1 = math.sqrt(
                        (di - 0.5 * db) ** 2
                        + (dj - 0.5 * db) ** 2
                        + (dk - 0.5 * db) ** 2
                    )
                    if 0 < d1 <= cutoff_in_a + 1e-12:
                        center_rows.append((db, di, dj, dk))
                        center_d.append(d1)
    return NeighborOffsets(
        corner=np.asarray(corner_rows, dtype=np.int64).reshape(-1, 4),
        center=np.asarray(center_rows, dtype=np.int64).reshape(-1, 4),
        corner_distances=np.asarray(corner_d, dtype=float),
        center_distances=np.asarray(center_d, dtype=float),
        cutoff=cutoff_in_a,
    )
